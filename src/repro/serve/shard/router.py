"""Data parallelism: a router over N full-model worker processes.

Each worker loads its own :class:`~repro.serve.batch.BatchedSession`
from the *same* ``model.checkpoint`` directory (the checkpoint acts as
a many-reader artifact store — loads are read-only and concurrent by
construction) and runs a private
:class:`~repro.serve.scheduler.Scheduler`.  The router assigns
requests with **least-outstanding-tokens** dispatch: requests are
walked in arrival order and each goes to the rank with the fewest
promised tokens (``prompt + max_new``) so far — a load balance that
needs no feedback channel and is deterministic for a given trace.

Every worker talks over its own duplex pipe.  A ``serve()`` call ships
each rank its request subset in one message; workers run their
schedulers concurrently and ship back ``(results, stats, telemetry
snapshot, plan histograms, elapsed)``.  The router re-labels results
with their global trace indices and merges the telemetry into one
:class:`FleetReport` — per-worker and fleet-wide occupancy, tokens/s,
and queue-wait percentiles.

Token streams are unaffected by dispatch: a request's tokens depend
only on the request itself (prompt, sampling params, seed) and the
checkpoint, never on which worker served it or who shared its batch —
the per-row bit-identity guarantee of the batched decode path.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass

import numpy as np

from repro.core.procutil import spawn_worker
from repro.engine.plan import merge_plan_histograms, plan_histograms
from repro.errors import ConfigError
from repro.model.session import Telemetry
from repro.serve.scheduler import Request, RequestResult, Scheduler, SchedulerStats


def queue_wait_percentiles(
    results,
    percentiles: tuple[int, ...] = (50, 95),
) -> dict[str, float]:
    """``{"p50": ..., "p95": ...}`` over queue-wait steps of ``results``."""
    waits = [r.queue_wait_steps for r in results]
    if not waits:
        return {f"p{p}": 0.0 for p in percentiles}
    arr = np.asarray(waits, dtype=np.float64)
    return {f"p{p}": float(np.percentile(arr, p)) for p in percentiles}


def _data_worker_main(
    conn,
    rank: int,
    checkpoint: str,
    backend: str,
    max_slots: int,
    capacity,
    prefill_chunk,
    prefix_cache_bytes: int,
) -> None:
    """Worker loop: load the checkpoint once, serve request batches."""
    from repro.serve.batch import BatchedSession
    from repro.serve.prefix import RadixPrefixCache

    try:
        cache = RadixPrefixCache(prefix_cache_bytes) if prefix_cache_bytes else None
        session = BatchedSession.from_checkpoint(
            checkpoint,
            backend=backend,
            max_slots=max_slots,
            capacity=capacity,
            prefix_cache=cache,
        )
    except Exception as exc:
        try:
            conn.send(("err", f"{type(exc).__name__}: {exc}"))
        finally:
            conn.close()
        return
    conn.send(("ready", rank))
    try:
        while True:
            message = conn.recv()
            if message is None:
                break
            op = message[0]
            if op == "run":
                requests = message[1]
                try:
                    session.telemetry.reset()
                    scheduler = Scheduler(
                        session,
                        max_batch=max_slots,
                        prefill_chunk=prefill_chunk,
                    )
                    start = time.perf_counter()
                    results = scheduler.run(list(requests))
                    elapsed = time.perf_counter() - start
                    payload = (
                        results,
                        scheduler.stats(),
                        session.telemetry.snapshot(),
                        plan_histograms(session.decoder.plans),
                        elapsed,
                    )
                except Exception as exc:
                    conn.send(("err", f"{type(exc).__name__}: {exc}"))
                else:
                    conn.send(("ok", payload))
            else:
                conn.send(("err", f"unknown op {op!r}"))
    except (EOFError, BrokenPipeError, KeyboardInterrupt):
        pass
    finally:
        conn.close()


@dataclass(frozen=True)
class WorkerReport:
    """One worker's share of a :meth:`Router.serve` call."""

    rank: int
    assigned: tuple[int, ...]  #: global trace indices, dispatch order
    results: tuple[RequestResult, ...]  #: re-labelled with global indices
    stats: SchedulerStats  #: the worker scheduler's own aggregate view
    telemetry: dict  #: :meth:`Telemetry.snapshot` from the worker
    plan_rows: dict  #: :func:`plan_histograms` from the worker's plans
    elapsed_s: float  #: worker wall time for its scheduler run

    @property
    def new_tokens(self) -> int:
        return sum(len(r.new_tokens) for r in self.results)

    @property
    def tokens_per_s(self) -> float:
        return self.new_tokens / self.elapsed_s if self.elapsed_s else 0.0

    @property
    def occupancy(self) -> float:
        return self.stats.mean_occupancy

    def queue_wait(self) -> dict[str, float]:
        """Queue-wait step percentiles for this worker's requests."""
        return queue_wait_percentiles(self.results)


@dataclass(frozen=True)
class FleetReport:
    """Merged outcome of one :meth:`Router.serve` call."""

    workers: tuple[WorkerReport, ...]
    results: tuple[RequestResult, ...]  #: all requests, trace order
    elapsed_s: float  #: router wall time (dispatch to last worker done)

    @property
    def completed(self) -> int:
        return len(self.results)

    @property
    def total_new_tokens(self) -> int:
        return sum(len(r.new_tokens) for r in self.results)

    @property
    def aggregate_tokens_per_s(self) -> float:
        """Fleet throughput: all generated tokens over router wall time."""
        return self.total_new_tokens / self.elapsed_s if self.elapsed_s else 0.0

    @property
    def mean_occupancy(self) -> float:
        """Busy-step-weighted mean slot occupancy across workers."""
        busy = sum(w.stats.busy_steps for w in self.workers)
        if not busy:
            return 0.0
        weighted = sum(
            w.stats.mean_occupancy * w.stats.busy_steps for w in self.workers
        )
        return weighted / busy

    def queue_wait(self) -> dict[str, float]:
        """Fleet-wide queue-wait step percentiles."""
        return queue_wait_percentiles(self.results)

    def merged_telemetry(self) -> Telemetry:
        """All workers' GEMM telemetry folded into one ``Telemetry``."""
        merged = Telemetry()
        for worker in self.workers:
            merged.merge(worker.telemetry)
        return merged

    def merged_plan_rows(self) -> dict[str, dict]:
        """All workers' plan histograms folded into one snapshot."""
        merged: dict[str, dict] = {}
        for worker in self.workers:
            merge_plan_histograms(merged, worker.plan_rows)
        return merged


class Router:
    """Least-outstanding-tokens dispatch over N checkpoint workers.

    ``checkpoint`` is a :func:`repro.model.checkpoint.save_model`
    directory; every worker loads it independently at startup (the
    concurrent-reader stress the checkpoint format is designed for).
    Use as a context manager, or call :meth:`close` explicitly.
    """

    def __init__(
        self,
        checkpoint,
        workers: int,
        *,
        backend: str = "fast",
        max_slots: int = 8,
        capacity: int | None = None,
        prefill_chunk: int | None = None,
        prefix_cache_bytes: int = 0,
    ) -> None:
        if workers < 1:
            raise ConfigError(f"router needs >= 1 worker, got {workers}")
        self.workers = workers
        self._procs = []
        self._conns = []
        self._closed = False
        try:
            for rank in range(workers):
                proc, conn = spawn_worker(
                    _data_worker_main,
                    (
                        rank,
                        str(checkpoint),
                        backend,
                        max_slots,
                        capacity,
                        prefill_chunk,
                        prefix_cache_bytes,
                    ),
                    name=f"serve-worker-{rank}",
                )
                self._procs.append(proc)
                self._conns.append(conn)
            for rank, conn in enumerate(self._conns):
                kind, payload = self._recv(rank, conn)
                if kind != "ready":
                    raise RuntimeError(f"serve worker {rank}: {payload}")
        except BaseException:
            self.close()
            raise

    @staticmethod
    def _recv(rank: int, conn):
        try:
            return conn.recv()
        except EOFError:
            raise RuntimeError(f"serve worker {rank} died") from None

    def dispatch(self, requests: list[Request]) -> list[list[int]]:
        """Assign global request indices to ranks, least-outstanding first.

        Requests are walked in trace order; each lands on the rank with
        the fewest outstanding promised tokens (``prompt + max_new``),
        ties broken by rank.  Pure function of the trace — no clock, no
        feedback — so the assignment is reproducible.
        """
        assignment: list[list[int]] = [[] for _ in range(self.workers)]
        outstanding = [0] * self.workers
        for index, request in enumerate(requests):
            rank = min(range(self.workers), key=lambda r: (outstanding[r], r))
            assignment[rank].append(index)
            outstanding[rank] += int(request.prompt.shape[0]) + request.max_new
        return assignment

    def serve(self, requests: list[Request]) -> FleetReport:
        """Dispatch ``requests`` across the fleet and merge the outcome."""
        if self._closed:
            raise RuntimeError("router is closed")
        assignment = self.dispatch(requests)
        start = time.perf_counter()
        for rank, conn in enumerate(self._conns):
            subset = [requests[i] for i in assignment[rank]]
            conn.send(("run", subset))
        reports = []
        merged: list[RequestResult | None] = [None] * len(requests)
        for rank, conn in enumerate(self._conns):
            kind, payload = self._recv(rank, conn)
            if kind != "ok":
                raise RuntimeError(f"serve worker {rank}: {payload}")
            results, stats, telemetry, plan_rows, elapsed = payload
            relabelled = []
            for result in results:
                global_id = assignment[rank][result.request_id]
                relabelled.append(
                    dataclasses.replace(result, request_id=global_id)
                )
                merged[global_id] = relabelled[-1]
            reports.append(
                WorkerReport(
                    rank=rank,
                    assigned=tuple(assignment[rank]),
                    results=tuple(relabelled),
                    stats=stats,
                    telemetry=telemetry,
                    plan_rows=plan_rows,
                    elapsed_s=elapsed,
                )
            )
        elapsed_s = time.perf_counter() - start
        return FleetReport(
            workers=tuple(reports),
            results=tuple(r for r in merged if r is not None),
            elapsed_s=elapsed_s,
        )

    def close(self) -> None:
        """Shut every worker down and reap the processes."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
            conn.close()
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)

    def __enter__(self) -> "Router":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
