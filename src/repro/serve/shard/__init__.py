"""Multi-process sharded serving: data-parallel router + tensor shards.

Two orthogonal ways past the one-process throughput ceiling:

* **Data parallel** (:class:`Router`) — N worker processes, each a
  full model loaded from one shared checkpoint directory, with
  least-outstanding-tokens dispatch and fleet-merged telemetry.
  Scales aggregate tokens/s with cores; per-request latency unchanged.
* **Tensor parallel** (:func:`tensor_shard` /
  :class:`TensorShardGroup`) — every weight matrix column-sharded
  across N workers, partial products gathered in fixed rank order.
  Output is bit-identical to single-process execution on every
  backend (see :mod:`repro.serve.shard.tensor` for the argument).

Both modes ride :mod:`repro.core.procutil` for process management and
are wired into ``pacq-repro serve-sim`` via ``--workers/--shard``.
"""

from repro.serve.shard.router import (
    FleetReport,
    Router,
    WorkerReport,
    queue_wait_percentiles,
)
from repro.serve.shard.tensor import ShardedPlan, TensorShardGroup, tensor_shard

__all__ = [
    "FleetReport",
    "Router",
    "ShardedPlan",
    "TensorShardGroup",
    "WorkerReport",
    "queue_wait_percentiles",
    "tensor_shard",
]
