"""Synthetic request traces and arrival-paced replay.

A *trace* is a list of :class:`~repro.serve.scheduler.Request` objects
whose ``arrival`` fields are scheduler-step timestamps.
:func:`synthesize` draws one deterministically from a
:class:`TraceSpec` (geometric inter-arrivals, uniform prompt/budget
lengths, per-request sampling seeds), and :func:`replay` feeds it to a
:class:`~repro.serve.scheduler.Scheduler` with arrival semantics:
requests become visible only once the step clock reaches their
arrival, and the clock ticks through idle gaps.  Replay is fully
deterministic for a fixed spec — the generated token streams depend
only on the seeds, never on wall-clock timing — which is what the CLI
``serve-sim`` subcommand and the trace-replay tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError, RequestError
from repro.serve.scheduler import Request, RequestResult, Scheduler


@dataclass(frozen=True)
class TraceSpec:
    """Parameters of a synthetic request trace.

    ``prompt_len`` and ``max_new`` are inclusive ``(lo, hi)`` ranges
    sampled uniformly; ``mean_interarrival`` is the mean gap between
    consecutive arrivals in scheduler steps (0 = all at once,
    otherwise geometric); ``top_k``/``temperature``/``eos_token``
    apply to every request (``top_k=None`` decodes greedily).

    ``shared_prefix_len``/``shared_fraction`` model the million-user
    prompt shape: with probability ``shared_fraction`` a request's
    prompt starts with one fixed ``shared_prefix_len``-token preamble
    (drawn once per spec — the "system prompt"), followed by its own
    random suffix.  Shared prompts are at least ``shared_prefix_len +
    1`` tokens long so every request still contributes a fresh final
    position.  ``shared_fraction=0`` (the default) leaves the token
    stream byte-identical to pre-prefix traces.
    """

    requests: int = 16
    seed: int = 0
    prompt_len: tuple[int, int] = (4, 24)
    max_new: tuple[int, int] = (4, 16)
    mean_interarrival: float = 2.0
    top_k: int | None = None
    temperature: float = 1.0
    eos_token: int | None = None
    shared_prefix_len: int = 0
    shared_fraction: float = 0.0


def synthesize(spec: TraceSpec, vocab: int, context_window: int) -> list[Request]:
    """Draw a deterministic trace within a model's limits.

    Prompt lengths are clamped so every request fits
    ``context_window``; request ``i`` samples with seed
    ``spec.seed * 10007 + i`` so replays are reproducible and requests
    are decorrelated.
    """
    if spec.requests < 1:
        raise ConfigError("a trace needs at least one request")
    lo_p, hi_p = spec.prompt_len
    lo_n, hi_n = spec.max_new
    if not (1 <= lo_p <= hi_p and 1 <= lo_n <= hi_n):
        raise ConfigError(f"invalid trace ranges in {spec}")
    if hi_n >= context_window:
        # Even a 1-token prompt could not fit prompt + max_new.
        raise ConfigError(
            f"max_new range up to {hi_n} cannot fit the context window "
            f"{context_window} alongside any prompt"
        )
    if spec.mean_interarrival < 0:
        raise ConfigError("mean_interarrival must be >= 0")
    if not 0.0 <= spec.shared_fraction <= 1.0:
        raise ConfigError("shared_fraction must lie in [0, 1]")
    shared = spec.shared_fraction > 0
    if shared:
        if spec.shared_prefix_len < 1:
            raise ConfigError(
                "shared_fraction > 0 needs shared_prefix_len >= 1"
            )
        if spec.shared_prefix_len + 1 + hi_n > context_window:
            raise ConfigError(
                f"shared prefix of {spec.shared_prefix_len} tokens plus a "
                f"suffix and max_new up to {hi_n} cannot fit the context "
                f"window {context_window}"
            )
    rng = np.random.default_rng(spec.seed)
    # The one preamble every shared request opens with; drawn only for
    # shared specs so shared_fraction=0 traces stay byte-identical.
    prefix = rng.integers(0, vocab, size=spec.shared_prefix_len) if shared else None
    requests = []
    arrival = 0
    for i in range(spec.requests):
        if i and spec.mean_interarrival > 0:
            p = min(1.0, 1.0 / spec.mean_interarrival)
            arrival += int(rng.geometric(p)) - 1
        max_new = int(rng.integers(lo_n, hi_n + 1))
        cap = max(1, min(hi_p, context_window - max_new))
        prompt_len = int(rng.integers(min(lo_p, cap), cap + 1))
        if shared and rng.random() < spec.shared_fraction:
            prompt_len = min(
                max(prompt_len, spec.shared_prefix_len + 1),
                context_window - max_new,
            )
            suffix = rng.integers(
                0, vocab, size=prompt_len - spec.shared_prefix_len
            )
            prompt = np.concatenate([prefix, suffix])
        else:
            prompt = rng.integers(0, vocab, size=prompt_len)
        requests.append(
            Request(
                prompt=prompt,
                max_new=max_new,
                top_k=spec.top_k,
                temperature=spec.temperature,
                seed=spec.seed * 10007 + i,
                eos_token=spec.eos_token,
                arrival=arrival,
            )
        )
    return requests


@dataclass(frozen=True)
class ReplayReport:
    """What came out of a trace replay."""

    results: list[RequestResult]
    rejected: list[tuple[int, str]]  #: (trace index, rejection message)


def replay(
    scheduler: Scheduler,
    requests: list[Request],
    strict: bool = True,
) -> ReplayReport:
    """Feed a trace through a scheduler with arrival-time semantics.

    Requests are submitted once the scheduler's step clock reaches
    their ``arrival`` (the trace must be arrival-sorted, as
    :func:`synthesize` produces); idle gaps tick the clock without
    decoding.  ``strict=False`` records
    :class:`~repro.errors.RequestError` rejections in the report
    instead of raising — the server keeps serving the rest.
    """
    order = [r.arrival for r in requests]
    if order != sorted(order):
        raise ConfigError("trace must be sorted by arrival step")
    rejected: list[tuple[int, str]] = []
    index = 0
    while True:
        while index < len(requests) and requests[index].arrival <= scheduler.steps:
            try:
                scheduler.submit(requests[index])
            except RequestError as exc:
                if strict:
                    raise
                rejected.append((index, str(exc)))
            index += 1
        if scheduler.step():
            continue
        if index < len(requests):
            scheduler.skip_idle()  # gap before the next arrival
            continue
        break
    return ReplayReport(results=scheduler.results(), rejected=rejected)
