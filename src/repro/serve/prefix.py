"""Radix prompt-prefix cache over KV state.

Real traffic shares long prompt prefixes (system prompts, few-shot
preambles).  Their KV state is a pure function of the token ids and
the model — RoPE keys depend only on *absolute* position, and every
prefix sits at positions ``0..p-1`` — so recomputing it per request is
wasted prefill.  :class:`RadixPrefixCache` stores per-layer K/V blocks
for previously served prompts in a radix tree (compressed trie) keyed
on token sequences:

* :meth:`lookup` walks the tree and returns the **longest cached
  prefix** of a prompt, as concatenated ``[layers, heads, match,
  d_head]`` key/value arrays ready for
  :meth:`~repro.llm.transformer.BatchedKVCache.copy_into`;
* :meth:`insert` stores a fully ingested prompt's KV state
  (:meth:`~repro.llm.transformer.BatchedKVCache.snapshot`), sharing
  the storage of every already-cached prefix (the radix property:
  one copy of a shared system prompt, however many continuations);
* eviction is LRU over leaf nodes under a byte budget
  (``max_bytes``): least-recently-touched leaves are dropped until
  the cache fits, so hot prefixes survive and interior nodes are
  only evicted once every continuation below them is gone.

Isolation is by copy, not reference counting: ``insert`` copies the
snapshot into tree-owned arrays and ``lookup`` returns freshly
concatenated copies, so a request mutating its
:class:`~repro.llm.transformer.BatchedKVCache` slot can never corrupt
a cached prefix or a sibling request (copy-on-write at both edges).

Bit-identity: a slot seeded from a cached prefix holds *exactly* the
K/V floats a fresh prefill of those tokens would produce (the decoder
computes each token row independently of its batch — see
:mod:`repro.llm.transformer`), so serving with the cache on is
bit-identical to serving with it off.  The cache is keyed on tokens
only: share one instance per model/weights (the engine's
``fast``/``batched``/``bitexact`` backends produce identical KV, so
backend mixes are safe; BLAS-backed ``reference`` is not).

Telemetry (:meth:`stats`) counts hits/misses at both request and
token granularity plus evictions and resident bytes, and feeds the
scheduler's ``serve_sim/v2`` record.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError


@dataclass
class _Node:
    """One radix-tree edge: a run of tokens and their KV blocks.

    ``keys``/``values`` are ``[layers, heads, len(tokens), d_head]``
    tree-owned copies; ``children`` maps the first token of each child
    edge to the child.  The root is the only node with an empty edge.
    """

    tokens: tuple[int, ...]
    keys: np.ndarray | None
    values: np.ndarray | None
    children: dict[int, "_Node"] = field(default_factory=dict)
    parent: "_Node | None" = None
    last_used: int = 0

    @property
    def nbytes(self) -> int:
        if self.keys is None:
            return 0
        return int(self.keys.nbytes + self.values.nbytes)


@dataclass(frozen=True)
class PrefixCacheStats:
    """Counters accumulated over a :class:`RadixPrefixCache` lifetime."""

    lookups: int  #: calls to ``lookup``
    hits: int  #: lookups that matched at least one token
    misses: int  #: lookups that matched nothing
    lookup_tokens: int  #: prompt tokens presented across lookups
    hit_tokens: int  #: prompt tokens served from the cache
    inserted_tokens: int  #: tokens newly stored (shared prefixes excluded)
    evictions: int  #: nodes dropped by the LRU budget
    evicted_tokens: int  #: tokens those nodes held
    bytes: int  #: resident K/V bytes
    max_bytes: int  #: the configured budget
    nodes: int  #: resident radix nodes (root excluded)

    @property
    def token_hit_rate(self) -> float:
        """Fraction of looked-up prompt tokens served from the cache."""
        return self.hit_tokens / self.lookup_tokens if self.lookup_tokens else 0.0


class RadixPrefixCache:
    """LRU-bounded radix tree of prompt-prefix KV state.

    ``max_bytes`` bounds the resident K/V bytes; an insertion that
    pushes the tree over the budget evicts least-recently-used leaves
    until it fits (an entry larger than the whole budget is evicted
    straight away — the cache never over-commits).
    """

    def __init__(self, max_bytes: int) -> None:
        if max_bytes < 1:
            raise ConfigError("prefix cache budget must be >= 1 byte")
        self.max_bytes = int(max_bytes)
        self._root = _Node(tokens=(), keys=None, values=None)
        self._clock = 0
        self._bytes = 0
        self._nodes = 0
        self._lookups = 0
        self._hits = 0
        self._misses = 0
        self._lookup_tokens = 0
        self._hit_tokens = 0
        self._inserted_tokens = 0
        self._evictions = 0
        self._evicted_tokens = 0

    # -- queries -------------------------------------------------------------

    @property
    def bytes(self) -> int:
        """Resident K/V bytes."""
        return self._bytes

    def stats(self) -> PrefixCacheStats:
        """Lifetime counters (see :class:`PrefixCacheStats`)."""
        return PrefixCacheStats(
            lookups=self._lookups,
            hits=self._hits,
            misses=self._misses,
            lookup_tokens=self._lookup_tokens,
            hit_tokens=self._hit_tokens,
            inserted_tokens=self._inserted_tokens,
            evictions=self._evictions,
            evicted_tokens=self._evicted_tokens,
            bytes=self._bytes,
            max_bytes=self.max_bytes,
            nodes=self._nodes,
        )

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    def _walk(
        self, tokens: tuple[int, ...]
    ) -> tuple[list[tuple[_Node, int]], int]:
        """Match ``tokens`` down the tree.

        Returns ``(path, matched)`` where ``path`` lists every touched
        node with how many of its edge tokens matched (the last entry
        may be a partial edge match), and ``matched`` is the total.
        """
        path: list[tuple[_Node, int]] = []
        node = self._root
        matched = 0
        while matched < len(tokens):
            child = node.children.get(tokens[matched])
            if child is None:
                break
            edge = child.tokens
            take = 0
            limit = min(len(edge), len(tokens) - matched)
            while take < limit and edge[take] == tokens[matched + take]:
                take += 1
            path.append((child, take))
            matched += take
            if take < len(edge):
                break
            node = child
        return path, matched

    def lookup(
        self, tokens: np.ndarray
    ) -> tuple[int, np.ndarray | None, np.ndarray | None]:
        """Longest cached prefix of ``tokens``.

        Returns ``(match, keys, values)``: ``match`` tokens of KV
        state as freshly concatenated ``[layers, heads, match,
        d_head]`` arrays (``(0, None, None)`` on a miss).  Every node
        on the matched path is LRU-touched.
        """
        key = tuple(int(t) for t in np.asarray(tokens).reshape(-1))
        self._lookups += 1
        self._lookup_tokens += len(key)
        path, matched = self._walk(key)
        if matched == 0:
            self._misses += 1
            return 0, None, None
        now = self._tick()
        for node, _ in path:
            node.last_used = now
        self._hits += 1
        self._hit_tokens += matched
        keys = np.concatenate(
            [node.keys[:, :, :take] for node, take in path], axis=2
        )
        values = np.concatenate(
            [node.values[:, :, :take] for node, take in path], axis=2
        )
        return matched, keys, values

    # -- insertion -----------------------------------------------------------

    def insert(
        self, tokens: np.ndarray, keys: np.ndarray, values: np.ndarray
    ) -> int:
        """Store a prompt's KV state; returns tokens newly cached.

        ``keys``/``values`` are ``[layers, heads, len(tokens),
        d_head]`` (a :meth:`BatchedKVCache.snapshot
        <repro.llm.transformer.BatchedKVCache.snapshot>` of the fully
        ingested prompt).  The already-cached prefix is shared, not
        duplicated; only the new suffix allocates.  May evict LRU
        leaves to respect ``max_bytes``.
        """
        key = tuple(int(t) for t in np.asarray(tokens).reshape(-1))
        if not key:
            raise ConfigError("cannot insert an empty token sequence")
        if (
            keys.ndim != 4
            or keys.shape != values.shape
            or keys.shape[2] != len(key)
        ):
            raise ConfigError(
                f"insert expects [layers, heads, {len(key)}, d_head] "
                f"keys/values, got {keys.shape} / {values.shape}"
            )
        path, matched = self._walk(key)
        now = self._tick()
        for node, _ in path:
            node.last_used = now
        if matched == len(key):
            return 0  # fully cached already
        # Attach point: the deepest fully matched node (split a
        # partially matched edge first).
        if path and path[-1][1] < len(path[-1][0].tokens):
            parent = self._split(*path[-1])
        elif path:
            parent = path[-1][0]
        else:
            parent = self._root
        suffix = key[matched:]
        # np.array (not ascontiguousarray) — the matched == 0 slice is
        # the caller's whole array and must still be copied, not aliased.
        node = _Node(
            tokens=suffix,
            keys=np.array(keys[:, :, matched:], order="C"),
            values=np.array(values[:, :, matched:], order="C"),
            parent=parent,
            last_used=now,
        )
        parent.children[suffix[0]] = node
        self._bytes += node.nbytes
        self._nodes += 1
        self._inserted_tokens += len(suffix)
        self._evict()
        return len(suffix)

    def _split(self, node: _Node, at: int) -> _Node:
        """Split ``node``'s edge after ``at`` tokens; returns the head.

        The head keeps the first ``at`` tokens (and ``node``'s place in
        the tree); the tail keeps the rest plus all children.  Byte
        accounting is unchanged — the KV blocks are merely re-sliced.
        """
        head = _Node(
            tokens=node.tokens[:at],
            keys=np.ascontiguousarray(node.keys[:, :, :at]),
            values=np.ascontiguousarray(node.values[:, :, :at]),
            parent=node.parent,
            last_used=node.last_used,
        )
        tail = _Node(
            tokens=node.tokens[at:],
            keys=np.ascontiguousarray(node.keys[:, :, at:]),
            values=np.ascontiguousarray(node.values[:, :, at:]),
            parent=head,
            last_used=node.last_used,
            children=node.children,
        )
        for child in tail.children.values():
            child.parent = tail
        head.children = {tail.tokens[0]: tail}
        node.parent.children[head.tokens[0]] = head
        self._nodes += 1
        return head

    # -- eviction ------------------------------------------------------------

    def _leaves(self) -> list[_Node]:
        out: list[_Node] = []
        stack = list(self._root.children.values())
        while stack:
            node = stack.pop()
            if node.children:
                stack.extend(node.children.values())
            else:
                out.append(node)
        return out

    def _evict(self) -> None:
        """Drop LRU leaves until the tree fits ``max_bytes``."""
        while self._bytes > self.max_bytes:
            leaves = self._leaves()
            if not leaves:
                break
            victim = min(leaves, key=lambda n: (n.last_used, n.tokens))
            del victim.parent.children[victim.tokens[0]]
            self._bytes -= victim.nbytes
            self._nodes -= 1
            self._evictions += 1
            self._evicted_tokens += len(victim.tokens)
