"""Speculative decoding with bit-exact greedy verification.

A cheap **draft model** proposes ``k`` tokens; the **target** decoder
verifies all of them (plus the token it was already committed to) in
ONE multi-row pass — one GEMM per weight matrix with ``m = k + 1``
rows, the same shape a batch of ``k + 1`` single-token decodes would
issue.  The longest draft prefix that matches the target's own greedy
(argmax) chain is accepted; at the first mismatch the target's argmax
replaces the draft token and the KV cache rolls the rejected suffix
back (:meth:`~repro.llm.transformer.BatchedKVCache.truncate`).

Why greedy identity holds by construction
-----------------------------------------

Every emitted token is ``argmax`` of a target logits row, and every
one of those rows is computed with the draft's tokens as *inputs only
up to the positions already accepted*: row ``i`` of a verify pass over
``[pending, d_1 .. d_k]`` conditions on ``pending, d_1 .. d_i`` —
exactly the sequence emitted so far whenever ``d_1 .. d_i`` were all
accepted.  Because every reduction in the decoder computes each token
row independently of its neighbours (the repo-wide row-independence
property, :mod:`repro.llm.transformer`), those rows are bit-identical
to the rows plain one-token-at-a-time decoding would produce.  An
induction over emitted tokens then gives bit-identical output to
:meth:`repro.model.InferenceSession.generate` for *any* draft — a
draft can only change how many tokens each verify pass yields, never
which tokens come out.

Drafts
------

* :class:`BigramDraft` — a vocab-sized next-token table walked
  greedily: zero GEMMs per proposal.  Build it from the existing
  ``llm.bigram`` head (:meth:`BigramDraft.from_lm`) or distil it from
  the target itself (:meth:`BigramDraft.distill`: the target's argmax
  continuation of every single-token context, one ragged prefill).
* :class:`SessionDraft` — a full autoregressive decoder under its own
  (typically lower-bit) :class:`~repro.model.QuantPolicy` checkpoint,
  with a slot pool + longest-common-prefix reuse so repeated proposals
  for the same request only decode the fresh suffix.  Pointing it at
  the *same* model as the target makes an always-right oracle draft.
* :class:`AdversarialDraft` — wraps any draft and shifts every
  proposal off by one (mod vocab); wrapping the oracle yields an
  always-wrong draft.  Both extremes must still be token-identical —
  they are the property suite's bounds.

:class:`SpeculativeSession` is the single-sequence API mirroring
``InferenceSession.generate``; the batched integration is
``Scheduler(speculate=(draft, k))`` (:mod:`repro.serve.scheduler`),
which verifies every resident greedy request's window in one ragged
pass per step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro.errors import ConfigError
from repro.llm.bigram import BigramLm
from repro.llm.transformer import (
    BatchedKVCache,
    Decoder,
    DecoderWeights,
    TransformerConfig,
)
from repro.model.session import check_tokens
from repro.serve.batch import BatchedSession


@runtime_checkable
class DraftModel(Protocol):
    """What the verify loop needs from a draft.

    ``propose(context, k)`` returns up to ``k`` greedy continuation
    tokens of ``context`` (1-D, ints in ``[0, vocab)``); returning
    fewer than ``k`` is allowed (e.g. near the context window).
    Drafts may additionally implement ``propose_batch(contexts, k)``
    (see :func:`propose_batch`) so a batched scheduler can draft for
    all residents in lock-step.
    """

    def propose(self, context: np.ndarray, k: int) -> np.ndarray: ...


def propose_batch(
    draft: DraftModel, contexts: Sequence[np.ndarray], k: int
) -> list[np.ndarray]:
    """Draft ``k`` tokens for several contexts at once.

    Uses the draft's own ``propose_batch`` when it has one (both
    built-in drafts do — :class:`BigramDraft` vectorizes the table
    walk, :class:`SessionDraft` shares one ragged pass per proposal
    step) and falls back to per-context :meth:`DraftModel.propose`.
    """
    batched = getattr(draft, "propose_batch", None)
    if batched is not None:
        return list(batched(contexts, k))
    return [draft.propose(ctx, k) for ctx in contexts]


def _check_proposals(proposals: np.ndarray, k: int, vocab: int) -> np.ndarray:
    """Validate one draft's output: 1-D, at most ``k``, in-vocab."""
    proposals = np.asarray(proposals, dtype=np.int64)
    if proposals.ndim != 1 or proposals.shape[0] > k:
        raise ConfigError(
            f"draft proposed shape {proposals.shape}, expected at most "
            f"{k} tokens in a 1-D array"
        )
    if proposals.size and not ((proposals >= 0).all() and (proposals < vocab).all()):
        raise ConfigError(f"draft proposed token ids outside [0, {vocab})")
    return proposals


class BigramDraft:
    """A next-token table walked greedily — drafting costs no GEMMs.

    ``table[t]`` is the proposed continuation of a context ending in
    ``t``; a window of ``k`` proposals is ``k`` table lookups.  The
    table can come from the ``llm.bigram`` head (:meth:`from_lm`) or
    be distilled from the target decoder itself (:meth:`distill`),
    which captures the target's last-token-conditional behaviour and
    is what ``--draft bigram`` uses.
    """

    def __init__(self, table: np.ndarray) -> None:
        table = np.asarray(table, dtype=np.int64)
        vocab = table.shape[0]
        if table.ndim != 1 or vocab < 1:
            raise ConfigError("BigramDraft needs a 1-D next-token table")
        if not ((table >= 0).all() and (table < vocab).all()):
            raise ConfigError(f"next-token table entries must lie in [0, {vocab})")
        self.table = table

    @classmethod
    def from_lm(cls, lm: BigramLm) -> "BigramDraft":
        """Greedy transition table of a ``llm.bigram`` head."""
        logits = lm.logits(np.arange(lm.vocab))
        return cls(np.argmax(logits, axis=1))

    @classmethod
    def distill(cls, decoder: Decoder) -> "BigramDraft":
        """The target's own argmax continuation of every 1-token context.

        One ragged prefill over all ``vocab`` single-token prompts
        (capacity-1 slots, one GEMM per weight matrix) — a one-time
        cost of roughly one ``vocab``-token prefill.
        """
        vocab = decoder.config.vocab
        cache = decoder.init_batched_cache(vocab, capacity=1)
        slots = [cache.allocate() for _ in range(vocab)]
        rows = decoder.prefill_ragged(
            [np.asarray([t]) for t in range(vocab)], cache, slots
        )
        return cls(np.asarray([int(np.argmax(r[0])) for r in rows]))

    def propose(self, context: np.ndarray, k: int) -> np.ndarray:
        return self.propose_batch([context], k)[0]

    def propose_batch(self, contexts: Sequence[np.ndarray], k: int) -> list[np.ndarray]:
        if k < 0:
            raise ConfigError(f"draft window k must be >= 0, got {k}")
        last = np.asarray([int(np.asarray(ctx)[-1]) for ctx in contexts])
        out = np.empty((len(contexts), k), dtype=np.int64)
        for step in range(k):
            last = self.table[last]
            out[:, step] = last
        return [out[i] for i in range(len(contexts))]


class SessionDraft:
    """An autoregressive draft decoder with its own KV slot pool.

    Runs any quantized model (typically a lower-bit
    :class:`~repro.model.QuantPolicy` checkpoint of the target's
    weights — mixed draft/target precision as a one-line policy spec)
    as the proposer.  Each proposal greedily decodes ``k`` tokens.
    Contexts are matched to resident slots by longest common prefix
    and rolled back with
    :meth:`~repro.llm.transformer.BatchedKVCache.truncate`, so across
    a generation loop only the freshly accepted suffix is re-decoded;
    ``propose_batch`` drafts for all contexts in lock-step (one GEMM
    per weight matrix per proposal step).

    Pointing it at the *same* model+backend as the target makes an
    always-right oracle: its greedy chain is bit-identical to the
    target's, so every proposal is accepted.
    """

    def __init__(
        self,
        model,
        backend: str = "fast",
        max_slots: int = 8,
        config: TransformerConfig | None = None,
        weights: DecoderWeights | None = None,
    ) -> None:
        cfg = config if config is not None else model.config
        w = weights if weights is not None else model.weights
        if cfg is None or w is None:
            raise ConfigError(
                "a session draft needs decoder config and weights; "
                "quantize a DecoderWeights with config=... or pass them here"
            )
        self.config = cfg
        self.backend = backend
        self.decoder = Decoder(cfg, w, model, backend=backend)
        self.cache: BatchedKVCache = self.decoder.init_batched_cache(max_slots)
        #: slot -> resident token sequence (for prefix matching).
        self._held: dict[int, list[int]] = {}
        #: slot -> last-use stamp (LRU eviction when the pool is full).
        self._stamp: dict[int, int] = {}
        self._clock = 0

    def _acquire(self, context: list[int], used: set[int]) -> tuple[int, int]:
        """A slot for ``context`` plus its usable common-prefix length."""
        best_slot, best_common = -1, 0
        for slot, held in self._held.items():
            if slot in used:
                continue
            limit = min(len(held), len(context))
            common = 0
            while common < limit and held[common] == context[common]:
                common += 1
            if common > best_common:
                best_slot, best_common = slot, common
        if best_common > 0:
            return best_slot, best_common
        if self.cache.free_slots > 0:
            return self.cache.allocate(), 0
        candidates = [s for s in self._held if s not in used]
        if not candidates:
            raise ConfigError(
                f"draft pool exhausted: batch needs more than "
                f"{self.cache.max_slots} slots"
            )
        victim = min(candidates, key=lambda s: self._stamp[s])
        return victim, 0

    def propose(self, context: np.ndarray, k: int) -> np.ndarray:
        return self.propose_batch([context], k)[0]

    def propose_batch(self, contexts: Sequence[np.ndarray], k: int) -> list[np.ndarray]:
        if k < 0:
            raise ConfigError(f"draft window k must be >= 0, got {k}")
        checked = [
            list(map(int, check_tokens(ctx, self.config.vocab)))
            for ctx in contexts
        ]
        # A context can only be continued while it fits the draft's own
        # window; propose fewer tokens (possibly none) near the edge.
        budgets = [min(k, self.config.max_seq - len(ctx)) for ctx in checked]
        if max(budgets, default=0) < 1:
            return [np.zeros(0, dtype=np.int64) for _ in checked]
        used: set[int] = set()
        slots: list[int] = []
        suffixes: list[np.ndarray] = []
        for ctx in checked:
            slot, common = self._acquire(ctx, used)
            # Keep at least the final context token to feed, so the
            # ragged pass below always yields the next-token row.
            common = min(common, len(ctx) - 1)
            self.cache.truncate(slot, common)
            used.add(slot)
            slots.append(slot)
            suffixes.append(np.asarray(ctx[common:], dtype=np.int64))
            self._clock += 1
            self._stamp[slot] = self._clock
        rows = self.decoder.prefill_ragged(suffixes, self.cache, slots, resume=True)
        last = [int(np.argmax(r[-1])) for r in rows]
        proposals: list[list[int]] = [
            [t] if budgets[i] >= 1 else [] for i, t in enumerate(last)
        ]
        for step in range(1, max(budgets)):
            live = [i for i in range(len(checked)) if budgets[i] > step]
            logits = self.decoder.decode_batch(
                [last[i] for i in live],
                self.cache,
                [slots[i] for i in live],
            )
            for i, row in zip(live, logits, strict=False):
                last[i] = int(np.argmax(row))
                proposals[i].append(last[i])
        for i, slot in enumerate(slots):
            # The final proposal was never fed into the draft's cache.
            self._held[slot] = checked[i] + proposals[i][:-1]
        return [np.asarray(p, dtype=np.int64) for p in proposals]


class AdversarialDraft:
    """Shift another draft's proposals off by one (mod vocab).

    A test fixture: wrapping an always-right oracle yields an
    always-wrong draft, the worst case for acceptance rate.  Both
    extremes must produce token-identical output — speculation only
    changes how much each verify pass yields.
    """

    def __init__(self, inner: DraftModel, vocab: int, shift: int = 1) -> None:
        if vocab < 2 or shift % vocab == 0:
            raise ConfigError(
                "an adversarial draft needs vocab >= 2 and a nonzero shift"
            )
        self.inner = inner
        self.vocab = vocab
        self.shift = shift

    def propose(self, context: np.ndarray, k: int) -> np.ndarray:
        return (self.inner.propose(context, k) + self.shift) % self.vocab

    def propose_batch(self, contexts: Sequence[np.ndarray], k: int) -> list[np.ndarray]:
        return [
            (p + self.shift) % self.vocab
            for p in propose_batch(self.inner, contexts, k)
        ]


@dataclass(frozen=True)
class SpeculativeResult:
    """Outcome + speculation telemetry of one speculative generation."""

    tokens: np.ndarray  #: prompt + generated tokens
    prompt_length: int
    finish_reason: str  #: ``"length"`` or ``"eos"``
    drafted_tokens: int  #: draft proposals fed to verify passes
    accepted_draft_tokens: int  #: of which matched the target's argmax
    verify_steps: int  #: multi-row target passes issued

    @property
    def new_tokens(self) -> np.ndarray:
        """The generated continuation only."""
        # detlint: ignore[D007]: slice of the result-owned token array, not
        # pool-backed cache state — nothing mutates it after completion.
        return self.tokens[self.prompt_length :]

    @property
    def wasted_draft_tokens(self) -> int:
        """Drafted positions whose verify rows were thrown away."""
        return self.drafted_tokens - self.accepted_draft_tokens

    @property
    def acceptance_rate(self) -> float:
        """Accepted / drafted (0.0 when nothing was drafted)."""
        if not self.drafted_tokens:
            return 0.0
        return self.accepted_draft_tokens / self.drafted_tokens

    @property
    def accepted_per_step(self) -> float:
        """Mean accepted draft tokens per verify pass.

        Each pass also commits its own argmax token, so the emitted
        tokens per target pass is ``1 + accepted_per_step``.
        """
        if not self.verify_steps:
            return 0.0
        return self.accepted_draft_tokens / self.verify_steps


class SpeculativeSession:
    """Greedy speculative generation, token-identical to ``generate``.

    The single-sequence counterpart of
    ``Scheduler(speculate=(draft, k))``: one slot, one draft, and a
    ``generate`` mirroring :meth:`repro.model.InferenceSession.generate`
    (greedy only — speculation is an argmax-chain property).  Each
    iteration feeds ``[pending] + draft(k)`` through one verify pass
    (``m = k + 1`` rows, one GEMM per weight matrix), emits the longest
    matching greedy prefix plus the pass's own argmax token, and
    truncates the rejected suffix out of the KV cache.  ``k = 0``
    degenerates to plain one-token-at-a-time decoding.
    """

    def __init__(
        self,
        model,
        draft: DraftModel,
        k: int,
        backend: str = "fast",
        config: TransformerConfig | None = None,
        weights: DecoderWeights | None = None,
    ) -> None:
        if k < 0:
            raise ConfigError(f"speculation depth k must be >= 0, got {k}")
        if not callable(getattr(draft, "propose", None)):
            raise ConfigError(
                "draft must implement propose(context, k) (see DraftModel)"
            )
        self.draft = draft
        self.k = int(k)
        self._session = BatchedSession(
            model, backend=backend, max_slots=1, config=config, weights=weights
        )

    @property
    def config(self) -> TransformerConfig:
        return self._session.config

    @property
    def decoder(self) -> Decoder:
        return self._session.decoder

    @property
    def telemetry(self):
        return self._session.telemetry

    def generate(
        self,
        prompt: np.ndarray,
        max_new_tokens: int,
        eos_token: int | None = None,
    ) -> SpeculativeResult:
        """Greedily generate ``max_new_tokens`` (or up to EOS).

        Token-identical to ``InferenceSession.generate(prompt,
        max_new_tokens)`` with the same model/backend (truncated at the
        first ``eos_token`` when one is given), for any draft and any
        ``k`` — see the module docstring for the argument.
        """
        if max_new_tokens < 1:
            raise ConfigError(f"max_new_tokens must be >= 1, got {max_new_tokens}")
        vocab = self.config.vocab
        prompt = check_tokens(prompt, vocab)
        total = prompt.shape[0] + max_new_tokens
        if total > self.config.max_seq:
            raise ConfigError(
                f"prompt ({prompt.shape[0]}) + max_new_tokens "
                f"({max_new_tokens}) = {total} exceeds "
                f"max_seq={self.config.max_seq}"
            )
        slots, last = self._session.join([prompt])
        slot = slots[0]
        out = [int(t) for t in prompt]
        drafted = accepted = verify_steps = 0
        generated = 0
        finish = "length"
        pending = int(np.argmax(last[0]))
        try:
            while True:
                out.append(pending)
                generated += 1
                if eos_token is not None and pending == eos_token:
                    finish = "eos"
                    break
                if generated >= max_new_tokens:
                    break
                window = min(self.k, max_new_tokens - generated)
                drafts = np.zeros(0, dtype=np.int64)
                if window > 0:
                    drafts = _check_proposals(
                        self.draft.propose(np.asarray(out), window),
                        window,
                        vocab,
                    )
                base = self._session.position(slot)
                block = np.concatenate([[pending], drafts]).astype(np.int64)
                rows = self._session.verify_step([slot], [block])[0]
                verify_steps += 1
                drafted += drafts.shape[0]
                j = 0
                next_token = int(np.argmax(rows[0]))
                terminal = None
                while j < drafts.shape[0] and int(drafts[j]) == next_token:
                    out.append(next_token)
                    generated += 1
                    accepted += 1
                    j += 1
                    if eos_token is not None and next_token == eos_token:
                        terminal = "eos"
                        break
                    if generated >= max_new_tokens:
                        terminal = "length"
                        break
                    next_token = int(np.argmax(rows[j]))
                self._session.truncate(slot, base + 1 + j)
                if terminal is not None:
                    finish = terminal
                    break
                pending = next_token
        finally:
            self._session.retire(slot)
        return SpeculativeResult(
            tokens=np.asarray(out, dtype=np.int64),
            prompt_length=prompt.shape[0],
            finish_reason=finish,
            drafted_tokens=drafted,
            accepted_draft_tokens=accepted,
            verify_steps=verify_steps,
        )
