"""Multi-request serving: continuous batching over batched KV-cache decode.

The layer between :mod:`repro.model` (one sequence per session) and a
traffic-facing server: many concurrent requests share one quantized
decoder so the per-token GEMMs amortize across the whole batch.

* :class:`BatchedSession` (:mod:`repro.serve.batch`) — slot-based
  multi-sequence KV cache + lock-step ``decode_step`` issuing **one**
  GEMM per weight matrix for all resident sequences, bit-identical per
  sequence to single-sequence decode;
* :class:`Scheduler` (:mod:`repro.serve.scheduler`) — continuous
  batching: FIFO queue, admission up to ``max_batch``, join-on-arrival
  and retire-on-EOS-or-length between steps, chunked prefill
  (``prefill_chunk`` bounds prompt tokens ingested per step so a long
  prompt cannot stall resident decodes), per-request and aggregate
  telemetry;
* :class:`RadixPrefixCache` (:mod:`repro.serve.prefix`) — a radix-tree
  prompt-prefix cache over KV state with LRU eviction under a byte
  budget; sessions seeded from it skip re-prefilling shared prompt
  prefixes, bit-identically;
* :class:`SpeculativeSession` + drafts (:mod:`repro.serve.speculative`)
  — speculative decoding with bit-exact greedy verification: a cheap
  draft (:class:`BigramDraft` table, :class:`SessionDraft` low-bit
  checkpoint) proposes ``k`` tokens, the target verifies all ``k + 1``
  positions in one multi-row pass and rolls rejects back; the
  scheduler integrates it via ``speculate=(draft, k)``;
* :func:`synthesize` / :func:`replay` (:mod:`repro.serve.trace`) —
  deterministic synthetic request traces (including shared-prefix
  traffic) and arrival-paced replay (the CLI's ``serve-sim``);
* :class:`Router` / :func:`tensor_shard` (:mod:`repro.serve.shard`) —
  multi-process sharding: a data-parallel router over N full-model
  workers reading one shared checkpoint, and tensor-parallel
  column-sharded GEMMs whose rank-ordered all-gather keeps logits
  bit-identical to single-process execution on every backend.

Typical use::

    from repro.serve import BatchedSession, Request, Scheduler

    session = BatchedSession(qmodel, backend="fast", max_slots=8)
    scheduler = Scheduler(session, max_batch=8)
    scheduler.submit(Request(prompt, max_new=32, top_k=8, seed=0))
    while scheduler.step():
        pass
    for result in scheduler.results():
        print(result.request_id, result.new_tokens, result.tokens_per_s)

See ``docs/serving.md`` for the scheduling model and every telemetry
field.
"""

from repro.serve.batch import BatchedSession
from repro.serve.prefix import PrefixCacheStats, RadixPrefixCache
from repro.serve.scheduler import (
    Request,
    RequestResult,
    Scheduler,
    SchedulerStats,
)
from repro.serve.shard import (
    FleetReport,
    Router,
    TensorShardGroup,
    WorkerReport,
    tensor_shard,
)
from repro.serve.speculative import (
    AdversarialDraft,
    BigramDraft,
    DraftModel,
    SessionDraft,
    SpeculativeResult,
    SpeculativeSession,
    propose_batch,
)
from repro.serve.trace import ReplayReport, TraceSpec, replay, synthesize

__all__ = [
    "AdversarialDraft",
    "BatchedSession",
    "BigramDraft",
    "DraftModel",
    "FleetReport",
    "PrefixCacheStats",
    "RadixPrefixCache",
    "ReplayReport",
    "Request",
    "RequestResult",
    "Router",
    "Scheduler",
    "SchedulerStats",
    "SessionDraft",
    "SpeculativeResult",
    "SpeculativeSession",
    "TensorShardGroup",
    "TraceSpec",
    "WorkerReport",
    "propose_batch",
    "replay",
    "synthesize",
]
