"""Multi-sequence serving sessions over the batched decode path.

:class:`BatchedSession` is the serving counterpart of
:class:`repro.model.InferenceSession`: instead of one
:class:`~repro.llm.transformer.KVCache`, it owns a
:class:`~repro.llm.transformer.BatchedKVCache` slot pool and steps all
resident sequences lock-step through
:meth:`~repro.llm.transformer.Decoder.decode_batch`, so each decode
step issues **one** GEMM per weight matrix with ``m = active slots``
rows — the amortization the engine's ``batched`` backend exists for.
Admission is a ragged prefill (:meth:`join`), retirement frees the
slot (:meth:`retire`), and every sequence's logits stay bit-identical
to decoding it alone (see the transformer module docstring for the
row-independence argument).

Prefix reuse and chunked prefill
--------------------------------

Construct the session with a
:class:`~repro.serve.prefix.RadixPrefixCache` and :meth:`admit` seeds
each new slot with the longest cached prefix of its prompt
(copy-on-write via
:meth:`~repro.llm.transformer.BatchedKVCache.copy_into`), so only the
uncached suffix is prefilled; :meth:`record_prefix` stores a fully
ingested prompt back into the cache.  :meth:`prefill_step` appends
prompt-token chunks to partially ingested slots (one ragged GEMM pass
for all of them), which is what lets a scheduler interleave long
prompt ingestion with decode steps of resident sequences.  Both
mechanisms preserve bit-identity: a slot seeded from the cache and
prefilled in chunks produces exactly the logits a monolithic prefill
would.

The session is slot-explicit and policy-free: it does not queue, batch
or sample.  That is :class:`repro.serve.Scheduler`'s job.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigError
from repro.llm.transformer import (
    BatchedKVCache,
    Decoder,
    DecoderWeights,
    TransformerConfig,
)
from repro.model.policy import QuantizedModel
from repro.model.session import Telemetry, check_tokens
from repro.serve.prefix import RadixPrefixCache


class BatchedSession:
    """A quantized decoder serving several sequences concurrently.

    Construction precompiles one GEMM plan per quantized layer (shared
    by all slots — the plans are row-count agnostic) and preallocates
    the slot pool.  The public surface is slot lifecycle plus the
    lock-step decode:

    * :meth:`join` — admit prompts (ragged prefill, shared GEMMs);
    * :meth:`admit` / :meth:`prefill_step` / :meth:`record_prefix` —
      the finer-grained admission path: allocate + prefix-cache seed,
      then ingest the remaining prompt in chunks (what a scheduler
      interleaves with decoding);
    * :meth:`decode_step` — append one token to each given slot, one
      GEMM per weight matrix for the whole batch;
    * :meth:`retire` — evict a sequence and free its slot.
    """

    def __init__(
        self,
        model: QuantizedModel,
        backend: str = "fast",
        max_slots: int = 8,
        capacity: int | None = None,
        config: TransformerConfig | None = None,
        weights: DecoderWeights | None = None,
        prefix_cache: RadixPrefixCache | None = None,
    ) -> None:
        cfg = config if config is not None else model.config
        w = weights if weights is not None else model.weights
        if cfg is None or w is None:
            raise ConfigError(
                "a batched session needs decoder config and weights; "
                "quantize a DecoderWeights with config=... or pass them here"
            )
        self.model = model
        self.config = cfg
        self.backend = backend
        self.telemetry = Telemetry()
        self.prefix_cache = prefix_cache
        self.decoder = Decoder(cfg, w, model, backend=backend, telemetry=self.telemetry)
        self.cache: BatchedKVCache = self.decoder.init_batched_cache(
            max_slots, capacity
        )

    @classmethod
    def from_checkpoint(
        cls,
        path,
        backend: str = "fast",
        max_slots: int = 8,
        capacity: int | None = None,
        prefix_cache: RadixPrefixCache | None = None,
    ) -> "BatchedSession":
        """Load a :func:`repro.model.checkpoint.save_model` directory."""
        from repro.model.checkpoint import load_model

        return cls(
            load_model(path),
            backend=backend,
            max_slots=max_slots,
            capacity=capacity,
            prefix_cache=prefix_cache,
        )

    # -- slot lifecycle ------------------------------------------------------

    @property
    def max_slots(self) -> int:
        return self.cache.max_slots

    @property
    def free_slots(self) -> int:
        return self.cache.free_slots

    @property
    def active_slots(self) -> list[int]:
        return self.cache.active_slots

    @property
    def context_window(self) -> int:
        """The model's maximum sequence length (``config.max_seq``)."""
        return self.config.max_seq

    def position(self, slot: int) -> int:
        """Tokens currently cached in ``slot``."""
        return int(self.cache.lengths[slot])

    def _check_prompt(self, prompt: np.ndarray) -> np.ndarray:
        prompt = check_tokens(prompt, self.config.vocab)
        if prompt.shape[0] > self.context_window:
            raise ConfigError(
                f"prompt of {prompt.shape[0]} tokens exceeds the model "
                f"context window max_seq={self.context_window}"
            )
        return prompt

    def admit(self, prompt: np.ndarray, seed: bool = True) -> tuple[int, int]:
        """Allocate a slot for ``prompt``, seeded from the prefix cache.

        Returns ``(slot, reused)`` where ``reused`` counts the prompt
        tokens whose KV state was copied from the prefix cache
        (0 without a cache or on a miss).  No GEMMs run here; the
        caller ingests ``prompt[reused:]`` via :meth:`prefill_step`.
        ``seed=False`` skips the cache lookup so it can be deferred to
        first ingestion via :meth:`seed_prefix` — a scheduler that
        admits a burst of same-prefix requests wants each lookup as
        late as possible, after earlier residents have recorded the
        prefix.
        """
        prompt = self._check_prompt(prompt)
        if self.cache.free_slots < 1:
            raise ConfigError(
                f"cannot admit a prompt: all {self.max_slots} slots in use"
            )
        slot = self.cache.allocate()
        reused = self.seed_prefix(slot, prompt) if seed else 0
        return slot, reused

    def seed_prefix(self, slot: int, prompt: np.ndarray) -> int:
        """Copy ``prompt``'s longest cached prefix into an empty slot.

        Returns the tokens reused (0 without a cache or on a miss),
        capped at ``len(prompt) - 1`` so the final prompt position is
        always recomputed — its logits row is what sampling the first
        generated token needs.  Copy-on-write: the slot gets its own
        copy, so decoding into it never touches the cached state.
        """
        if self.prefix_cache is None:
            return 0
        prompt = np.asarray(prompt)
        match, keys, values = self.prefix_cache.lookup(prompt)
        match = min(match, prompt.shape[0] - 1)
        if match < 1:
            return 0
        self.cache.copy_into(slot, keys[:, :, :match], values[:, :, :match])
        return match

    def prefill_step(
        self, slots: Sequence[int], chunks: Sequence[np.ndarray]
    ) -> list[np.ndarray]:
        """Append prompt-token chunks to their slots in one ragged pass.

        ``chunks[i]`` extends ``slots[i]`` at its current offset; all
        rows share one GEMM per weight matrix.  Returns one
        ``[len(chunks[i]), vocab]`` logits array per chunk, each row
        bit-identical to the corresponding row of a monolithic prefill
        of the whole prompt.
        """
        checked = [check_tokens(c, self.config.vocab) for c in chunks]
        return self.decoder.prefill_ragged(
            checked, self.cache, list(slots), resume=True
        )

    def record_prefix(self, slot: int, prompt: np.ndarray) -> int:
        """Store an ingested prompt's KV state in the prefix cache.

        ``prompt`` may be any already-ingested prefix of the slot's
        prompt — recording chunk by chunk lets concurrent same-prefix
        requests share state before any prompt finishes.  Returns the
        number of tokens newly cached (0 without a cache, or when the
        prefix was already fully resident).  The snapshot is a copy, so
        the request is free to keep decoding into the slot.
        """
        if self.prefix_cache is None:
            return 0
        prompt = np.asarray(prompt)
        keys, values = self.cache.snapshot(slot, prompt.shape[0])
        return self.prefix_cache.insert(prompt, keys, values)

    def join(
        self,
        prompts: Sequence[np.ndarray],
        prefill_chunk: int | None = None,
    ) -> tuple[list[int], np.ndarray]:
        """Admit prompts into fresh slots via ragged prefill.

        Returns ``(slots, last_logits)`` where ``last_logits[i]`` is
        the logits row of prompt ``i``'s final position — what sampling
        the first generated token needs.  With a prefix cache
        installed, each prompt's longest cached prefix is copied in and
        only the suffix is prefilled; fully ingested prompts are
        recorded back into the cache.  ``prefill_chunk`` bounds the
        total prompt tokens per ragged GEMM pass (ingestion loops until
        done — the interleaving variant is :meth:`admit` +
        :meth:`prefill_step`, which a scheduler alternates with
        decodes).  Raises :class:`~repro.errors.ConfigError` when fewer
        than ``len(prompts)`` slots are free or a prompt is malformed /
        longer than the context window.
        """
        if not prompts:
            raise ConfigError("join needs at least one prompt")
        if prefill_chunk is not None and prefill_chunk < 1:
            raise ConfigError("prefill_chunk must be >= 1 token")
        checked = [self._check_prompt(p) for p in prompts]
        if len(checked) > self.cache.free_slots:
            raise ConfigError(
                f"cannot join {len(checked)} prompts: only "
                f"{self.cache.free_slots} of {self.max_slots} slots free"
            )
        slots: list[int] = []
        ingested: list[int] = []
        for prompt in checked:
            slot, reused = self.admit(prompt)
            slots.append(slot)
            ingested.append(reused)
        last: list[np.ndarray | None] = [None] * len(checked)
        while True:
            batch_slots: list[int] = []
            batch_chunks: list[np.ndarray] = []
            batch_index: list[int] = []
            budget = prefill_chunk
            for i, prompt in enumerate(checked):
                remaining = prompt.shape[0] - ingested[i]
                if remaining == 0:
                    continue
                if budget is not None:
                    if budget == 0:
                        break
                    remaining = min(remaining, budget)
                    budget -= remaining
                batch_slots.append(slots[i])
                batch_chunks.append(prompt[ingested[i] : ingested[i] + remaining])
                batch_index.append(i)
            if not batch_slots:
                break
            rows = self.prefill_step(batch_slots, batch_chunks)
            for i, chunk, chunk_rows in zip(batch_index, batch_chunks, rows, strict=False):
                ingested[i] += chunk.shape[0]
                if ingested[i] == checked[i].shape[0]:
                    last[i] = chunk_rows[-1]
        for slot, prompt in zip(slots, checked, strict=False):
            self.record_prefix(slot, prompt)
        return slots, np.stack(last)

    def decode_step(
        self, slots: Sequence[int], tokens: Sequence[int] | np.ndarray
    ) -> np.ndarray:
        """Append ``tokens[i]`` to ``slots[i]``; returns ``[batch, vocab]``.

        One GEMM per weight matrix for the whole batch; row ``i`` is
        bit-identical to single-sequence ``decode_step`` on that slot's
        sequence.
        """
        tokens = check_tokens(np.asarray(tokens), self.config.vocab)
        return self.decoder.decode_batch(tokens, self.cache, list(slots))

    def verify_step(
        self, slots: Sequence[int], blocks: Sequence[np.ndarray]
    ) -> list[np.ndarray]:
        """Append speculative windows to their slots in one ragged pass.

        ``blocks[i]`` is slot ``i``'s ``[pending] + drafted`` window;
        all rows share one GEMM per weight matrix (``m`` = total window
        tokens), tagged with the ``"verify"`` engine phase so plan
        histograms keep verify traffic apart from plain decode.
        Returns one ``[len(blocks[i]), vocab]`` logits array per slot,
        each row bit-identical to single-token decoding that slot's
        sequence (row independence — the speculative identity
        guarantee rests on this).  The caller accepts a prefix and
        rolls the rest back via :meth:`truncate`.
        """
        checked = [check_tokens(b, self.config.vocab) for b in blocks]
        return self.decoder.prefill_ragged(
            checked, self.cache, list(slots), resume=True, phase="verify"
        )

    def truncate(self, slot: int, length: int) -> None:
        """Roll a slot back to ``length`` tokens (speculative rollback)."""
        self.cache.truncate(slot, length)

    def retire(self, slot: int) -> None:
        """Evict a sequence and return its slot to the pool."""
        self.cache.release(slot)
