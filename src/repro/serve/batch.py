"""Multi-sequence serving sessions over the batched decode path.

:class:`BatchedSession` is the serving counterpart of
:class:`repro.model.InferenceSession`: instead of one
:class:`~repro.llm.transformer.KVCache`, it owns a
:class:`~repro.llm.transformer.BatchedKVCache` slot pool and steps all
resident sequences lock-step through
:meth:`~repro.llm.transformer.Decoder.decode_batch`, so each decode
step issues **one** GEMM per weight matrix with ``m = active slots``
rows — the amortization the engine's ``batched`` backend exists for.
Admission is a ragged prefill (:meth:`join`), retirement frees the
slot (:meth:`retire`), and every sequence's logits stay bit-identical
to decoding it alone (see the transformer module docstring for the
row-independence argument).

The session is slot-explicit and policy-free: it does not queue, batch
or sample.  That is :class:`repro.serve.Scheduler`'s job.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigError
from repro.llm.transformer import (
    BatchedKVCache,
    Decoder,
    DecoderWeights,
    TransformerConfig,
)
from repro.model.policy import QuantizedModel
from repro.model.session import Telemetry, check_tokens


class BatchedSession:
    """A quantized decoder serving several sequences concurrently.

    Construction precompiles one GEMM plan per quantized layer (shared
    by all slots — the plans are row-count agnostic) and preallocates
    the slot pool.  The public surface is slot lifecycle plus the
    lock-step decode:

    * :meth:`join` — admit prompts (ragged prefill, shared GEMMs);
    * :meth:`decode_step` — append one token to each given slot, one
      GEMM per weight matrix for the whole batch;
    * :meth:`retire` — evict a sequence and free its slot.
    """

    def __init__(
        self,
        model: QuantizedModel,
        backend: str = "fast",
        max_slots: int = 8,
        capacity: int | None = None,
        config: TransformerConfig | None = None,
        weights: DecoderWeights | None = None,
    ) -> None:
        cfg = config if config is not None else model.config
        w = weights if weights is not None else model.weights
        if cfg is None or w is None:
            raise ConfigError(
                "a batched session needs decoder config and weights; "
                "quantize a DecoderWeights with config=... or pass them here"
            )
        self.model = model
        self.config = cfg
        self.backend = backend
        self.telemetry = Telemetry()
        self.decoder = Decoder(
            cfg, w, model, backend=backend, telemetry=self.telemetry
        )
        self.cache: BatchedKVCache = self.decoder.init_batched_cache(
            max_slots, capacity
        )

    @classmethod
    def from_checkpoint(
        cls,
        path,
        backend: str = "fast",
        max_slots: int = 8,
        capacity: int | None = None,
    ) -> "BatchedSession":
        """Load a :func:`repro.model.checkpoint.save_model` directory."""
        from repro.model.checkpoint import load_model

        return cls(
            load_model(path),
            backend=backend,
            max_slots=max_slots,
            capacity=capacity,
        )

    # -- slot lifecycle ------------------------------------------------------

    @property
    def max_slots(self) -> int:
        return self.cache.max_slots

    @property
    def free_slots(self) -> int:
        return self.cache.free_slots

    @property
    def active_slots(self) -> list[int]:
        return self.cache.active_slots

    @property
    def context_window(self) -> int:
        """The model's maximum sequence length (``config.max_seq``)."""
        return self.config.max_seq

    def position(self, slot: int) -> int:
        """Tokens currently cached in ``slot``."""
        return int(self.cache.lengths[slot])

    def join(self, prompts: Sequence[np.ndarray]) -> tuple[list[int], np.ndarray]:
        """Admit prompts into fresh slots via one ragged prefill.

        Returns ``(slots, last_logits)`` where ``last_logits[i]`` is
        the logits row of prompt ``i``'s final position — what sampling
        the first generated token needs.  Raises
        :class:`~repro.errors.ConfigError` when fewer than
        ``len(prompts)`` slots are free or a prompt is malformed /
        longer than the context window.
        """
        if not prompts:
            raise ConfigError("join needs at least one prompt")
        checked = [check_tokens(p, self.config.vocab) for p in prompts]
        for prompt in checked:
            if prompt.shape[0] > self.context_window:
                raise ConfigError(
                    f"prompt of {prompt.shape[0]} tokens exceeds the model "
                    f"context window max_seq={self.context_window}"
                )
        if len(checked) > self.cache.free_slots:
            raise ConfigError(
                f"cannot join {len(checked)} prompts: only "
                f"{self.cache.free_slots} of {self.max_slots} slots free"
            )
        slots = [self.cache.allocate() for _ in checked]
        logits = self.decoder.prefill_ragged(checked, self.cache, slots)
        return slots, np.stack([rows[-1] for rows in logits])

    def decode_step(
        self, slots: Sequence[int], tokens: Sequence[int] | np.ndarray
    ) -> np.ndarray:
        """Append ``tokens[i]`` to ``slots[i]``; returns ``[batch, vocab]``.

        One GEMM per weight matrix for the whole batch; row ``i`` is
        bit-identical to single-sequence ``decode_step`` on that slot's
        sequence.
        """
        tokens = check_tokens(np.asarray(tokens), self.config.vocab)
        return self.decoder.decode_batch(tokens, self.cache, list(slots))

    def retire(self, slot: int) -> None:
        """Evict a sequence and return its slot to the pool."""
        self.cache.release(slot)
