"""Continuous batching: a FIFO request queue over lock-step decode.

The scheduling model is the standard one (Orca/vLLM-style, scaled to
this repo): requests queue FIFO, the server admits up to ``max_batch``
of them into KV-cache slots, and every :meth:`Scheduler.step` decodes
**all** resident sequences in lock-step — one GEMM per weight matrix
with ``m = active`` rows.  Between steps the batch membership changes
continuously: finished sequences retire immediately (EOS or length
budget) and waiting requests join via ragged prefill, so the batch
never drains to refill (the "continuous" in continuous batching).

Chunked prefill
---------------

Without a bound, admitting a long prompt runs its whole prefill inside
one step, freezing every resident sequence for the duration
(``BENCH_session.json``: ~5 s to prefill 256 tokens vs ~24 ms per
decode token).  ``prefill_chunk`` caps the total prompt tokens
ingested per step: admission becomes allocate-and-seed (prefix-cache
copy, no GEMMs), and each step ingests at most ``prefill_chunk``
prompt tokens across the partially ingested residents *before* the
decode pass — so resident sequences keep decoding between chunks, and
no step's wall time is dominated by a single long prompt.  A request
starts sampling only once its prompt is fully ingested; its token
stream is bit-identical either way (chunked prefill rows equal
monolithic prefill rows — see :mod:`repro.llm.transformer`).

Prefix reuse
------------

When the session carries a
:class:`~repro.serve.prefix.RadixPrefixCache`, each prompt's longest
cached prefix is copied into its slot (copy-on-write) and only the
uncached suffix is prefilled.  The lookup is deferred from admission
to the request's *first prefill chunk*, and every ingested chunk is
recorded into the cache immediately — so when a burst of same-prefix
requests arrives at once (the shared-system-prompt shape), the first
request's first chunk publishes the prefix and every later request in
the burst reuses it instead of re-prefilling it in parallel.
``SchedulerStats`` reports the resulting prefill-vs-cached token split
and the per-step prefill bound.

Speculative decoding
--------------------

``Scheduler(speculate=(draft, k))`` replaces the one-token decode pass
with a speculative verify pass: each resident *greedy* request drafts
``k`` tokens (:func:`repro.serve.speculative.propose_batch` — all
residents draft in lock-step), and one ragged pass verifies every
request's ``[pending] + drafts`` window — still one GEMM per weight
matrix per step, just with more rows.  The longest draft prefix
matching each request's own argmax chain is emitted, the rejected
suffix rolls back (:meth:`~repro.llm.transformer.BatchedKVCache.
truncate`), and per-request telemetry records drafted / accepted /
wasted tokens and accepted-per-step.  Sampling requests (``top_k``
set) ride the same pass with a one-token window — their streams, like
the greedy ones, are bit-identical to the non-speculative scheduler's
(see :mod:`repro.serve.speculative` for the identity argument).

Admission control happens at :meth:`Scheduler.submit`: a request whose
``prompt + max_new`` cannot fit the model context window is rejected
up front with a :class:`~repro.errors.RequestError` (a ``ValueError``)
naming the limit — not accepted and then blown up positions deep
inside RoPE.

Telemetry is recorded per request (queue wait, decode time, tokens/s,
cached prefix tokens) and in aggregate (:meth:`Scheduler.stats`: step
counts, mean batch occupancy, aggregate throughput, prefill/decode
token split, prefill stalls); ``docs/serving.md`` documents every
field.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError, RequestError
from repro.model.session import check_tokens, select_token
from repro.serve.batch import BatchedSession


@dataclass(frozen=True)
class Request:
    """One generation request, as submitted to the scheduler.

    ``arrival`` is the replay timestamp in scheduler steps — only
    :func:`repro.serve.replay` interprets it (``submit`` queues
    immediately); it lets synthetic traces model requests arriving
    while the server is mid-decode.
    """

    prompt: np.ndarray
    max_new: int
    top_k: int | None = None
    temperature: float = 1.0
    seed: int = 0
    eos_token: int | None = None
    arrival: int = 0


@dataclass(frozen=True)
class RequestResult:
    """Outcome and per-request telemetry of one served request."""

    request_id: int
    tokens: np.ndarray  #: prompt + generated tokens
    prompt_length: int
    finish_reason: str  #: ``"length"`` or ``"eos"``
    queue_wait_steps: int  #: steps between submit and admission
    queue_wait_s: float  #: wall time between submit and admission
    decode_s: float  #: wall time between admission and completion
    tokens_per_s: float  #: generated tokens / ``decode_s``
    cached_prefix_tokens: int = 0  #: prompt tokens reused from the prefix cache
    drafted_tokens: int = 0  #: draft proposals verified for this request
    accepted_draft_tokens: int = 0  #: of which matched its argmax chain
    spec_steps: int = 0  #: verify passes that carried a draft window

    @property
    def new_tokens(self) -> np.ndarray:
        """The generated continuation only."""
        # detlint: ignore[D007]: slice of the result-owned token array, not
        # pool-backed cache state — nothing mutates it after completion.
        return self.tokens[self.prompt_length :]

    @property
    def wasted_draft_tokens(self) -> int:
        """Drafted positions whose verify rows were thrown away."""
        return self.drafted_tokens - self.accepted_draft_tokens

    @property
    def accepted_per_step(self) -> float:
        """Mean accepted draft tokens per verify pass with a window."""
        if not self.spec_steps:
            return 0.0
        return self.accepted_draft_tokens / self.spec_steps


@dataclass(frozen=True)
class SchedulerStats:
    """Aggregate telemetry over one scheduler lifetime."""

    steps: int  #: scheduler iterations, including idle ticks
    busy_steps: int  #: iterations that admitted, sampled or decoded
    decode_steps: int  #: iterations that issued a batched decode GEMM pass
    completed: int  #: requests finished
    rejected: int  #: requests refused at submit()
    max_batch: int  #: admission ceiling
    mean_occupancy: float  #: mean active/max_batch over busy steps
    total_new_tokens: int  #: generated tokens across completed requests
    elapsed_s: float  #: wall time from first busy step to last completion
    aggregate_tokens_per_s: float  #: total_new_tokens / elapsed_s
    mean_queue_wait_steps: float
    mean_queue_wait_s: float
    prefill_tokens: int = 0  #: prompt tokens ingested through prefill GEMMs
    cached_prefix_tokens: int = 0  #: prompt tokens copied from the prefix cache
    decode_tokens: int = 0  #: token rows decoded through batched decode GEMMs
    prefill_steps: int = 0  #: iterations that issued a prefill GEMM pass
    prefill_stall_steps: int = 0  #: iterations that hit the chunk budget
    #: with prompt tokens still pending
    max_prefill_tokens_per_step: int = 0  #: the observed per-step bound
    drafted_tokens: int = 0  #: draft proposals fed through verify passes
    accepted_draft_tokens: int = 0  #: of which matched an argmax chain
    verify_steps: int = 0  #: iterations that issued a speculative verify pass

    @property
    def prefix_hit_rate(self) -> float:
        """Fraction of prompt tokens served from the prefix cache."""
        total = self.prefill_tokens + self.cached_prefix_tokens
        return self.cached_prefix_tokens / total if total else 0.0

    @property
    def wasted_draft_tokens(self) -> int:
        """Drafted positions whose verify rows were thrown away."""
        return self.drafted_tokens - self.accepted_draft_tokens

    @property
    def draft_acceptance_rate(self) -> float:
        """Accepted / drafted across the run (0.0 with no drafting)."""
        if not self.drafted_tokens:
            return 0.0
        return self.accepted_draft_tokens / self.drafted_tokens

    @property
    def accepted_per_verify_step(self) -> float:
        """Mean accepted draft tokens per speculative verify pass."""
        if not self.verify_steps:
            return 0.0
        return self.accepted_draft_tokens / self.verify_steps


@dataclass
class _ActiveRequest:
    """Scheduler-internal bookkeeping for one admitted request."""

    request_id: int
    request: Request
    prompt: np.ndarray
    rng: np.random.Generator
    submitted_step: int
    submitted_time: float
    slot: int = -1
    admitted_step: int = -1
    admitted_time: float = 0.0
    ingested: int = 0  #: prompt tokens resident in the slot so far
    cached_prefix: int = 0  #: of which copied from the prefix cache
    generated: list[int] = field(default_factory=list)
    last_logits: np.ndarray | None = None
    drafted: int = 0  #: draft tokens verified for this request
    accepted: int = 0  #: of which matched its argmax chain
    spec_steps: int = 0  #: verify passes that carried a draft window

    @property
    def ingesting(self) -> bool:
        """Still streaming prompt tokens in; not yet sampling."""
        return self.ingested < self.prompt.shape[0]


class Scheduler:
    """FIFO admission + lock-step batched decode over a session.

    Drive it either request-by-request (:meth:`submit` then
    :meth:`step` until it returns ``False``) or in one call
    (:meth:`run`); :func:`repro.serve.replay` adds arrival-time
    semantics for trace replay.  ``prefill_chunk`` caps the prompt
    tokens ingested per step (``None`` = unbounded, prompts prefill in
    one pass at admission).  ``speculate=(draft, k)`` turns the decode
    pass into a speculative verify pass for greedy residents (see the
    module docstring); token streams are identical either way.
    """

    def __init__(
        self,
        session: BatchedSession,
        max_batch: int | None = None,
        prefill_chunk: int | None = None,
        speculate: tuple[object, int] | None = None,
    ) -> None:
        self.session = session
        self.max_batch = session.max_slots if max_batch is None else max_batch
        if not 1 <= self.max_batch <= session.max_slots:
            raise ConfigError(
                f"max_batch must lie in [1, {session.max_slots}] "
                f"(the session's slot count), got {self.max_batch}"
            )
        if prefill_chunk is not None and prefill_chunk < 1:
            raise ConfigError(f"prefill_chunk must be >= 1 token, got {prefill_chunk}")
        self.prefill_chunk = prefill_chunk
        self.draft = None
        self.spec_k = 0
        if speculate is not None:
            draft, spec_k = speculate
            if not callable(getattr(draft, "propose", None)):
                raise ConfigError(
                    "speculate needs (draft, k) with a draft implementing "
                    "propose(context, k) — see repro.serve.speculative"
                )
            if spec_k < 0:
                raise ConfigError(f"speculation depth k must be >= 0, got {spec_k}")
            self.draft = draft
            self.spec_k = int(spec_k)
        self.drafted_tokens = 0
        self.accepted_draft_tokens = 0
        self.verify_steps = 0
        self.steps = 0
        self.busy_steps = 0
        self.decode_steps = 0
        self.rejected = 0
        self.prefill_tokens = 0
        self.cached_prefix_tokens = 0
        self.decode_tokens = 0
        self.prefill_steps = 0
        self.prefill_stall_steps = 0
        self.max_prefill_tokens_per_step = 0
        self._occupancy_total = 0.0
        self._queue: deque[_ActiveRequest] = deque()
        self._active: list[_ActiveRequest] = []
        self._results: list[RequestResult] = []
        self._next_id = 0
        self._first_busy_time: float | None = None
        self._last_finish_time: float | None = None

    # -- request intake ------------------------------------------------------

    @property
    def queued(self) -> int:
        """Requests waiting for a batch slot."""
        return len(self._queue)

    @property
    def active(self) -> int:
        """Requests currently resident in the batch."""
        return len(self._active)

    def submit(self, request: Request) -> int:
        """Queue a request; returns its id.

        Rejects malformed prompts (:class:`~repro.errors.ConfigError`)
        and requests with invalid sampling parameters or that cannot
        fit the model context window
        (:class:`~repro.errors.RequestError`, a ``ValueError``) before
        they reach the decode path — never mid-step, where a failure
        would strand the other resident requests.
        """
        try:
            prompt = check_tokens(request.prompt, self.session.config.vocab)
            if request.max_new < 1:
                raise RequestError("max_new must be >= 1")
            if request.top_k is not None:
                if request.top_k < 1:
                    raise RequestError("top_k must be >= 1")
                if request.temperature <= 0:
                    raise RequestError("temperature must be > 0")
            window = self.session.context_window
            total = prompt.shape[0] + request.max_new
            if total > window:
                raise RequestError(
                    f"request needs {prompt.shape[0]} prompt + "
                    f"{request.max_new} new = {total} tokens, which exceeds "
                    f"the model context window max_seq={window}"
                )
        except (ConfigError, RequestError):
            self.rejected += 1
            raise
        request_id = self._next_id
        self._next_id += 1
        self._queue.append(
            _ActiveRequest(
                request_id=request_id,
                request=request,
                prompt=prompt,
                rng=np.random.default_rng(request.seed),
                submitted_step=self.steps,
                submitted_time=time.perf_counter(),
            )
        )
        return request_id

    # -- the scheduling loop -------------------------------------------------

    def _admit(self) -> int:
        """Allocate slots for queued requests while the batch has room.

        Admission is allocation only (no GEMMs, no cache lookup); the
        prompt is ingested by :meth:`_ingest`, bounded per step by
        ``prefill_chunk``, which also performs the prefix-cache seed
        right before the request's first chunk — as late as possible,
        so prefixes recorded by earlier residents are visible to
        requests that arrived in the same burst.
        """
        room = min(self.max_batch - len(self._active), self.session.free_slots)
        joining = []
        while self._queue and len(joining) < room:
            joining.append(self._queue.popleft())
        if not joining:
            return 0
        now = time.perf_counter()
        for state in joining:
            slot, _ = self.session.admit(state.prompt, seed=False)
            state.slot = slot
            state.admitted_step = self.steps
            state.admitted_time = now
        self._active.extend(joining)
        return len(joining)

    def _ingest(self) -> None:
        """Stream prompt chunks into partially ingested residents.

        One ragged prefill pass over at most ``prefill_chunk`` total
        prompt tokens (unbounded when ``None``), FIFO across the
        ingesting requests.  A request's first chunk is preceded by its
        prefix-cache seed (the deferred lookup — its slot is still
        empty at that point); every ingested chunk is recorded into the
        cache so in-flight prompts already share their ingested prefix.
        A request whose prompt completes gets its final logits row
        (sampling starts next).
        """
        pending = [s for s in self._active if s.ingesting]
        if not pending:
            return
        budget = self.prefill_chunk
        slots: list[int] = []
        chunks: list[np.ndarray] = []
        states: list[_ActiveRequest] = []
        taken = 0
        for state in pending:
            if budget is not None and taken >= budget:
                break
            if state.ingested == 0:
                reused = self.session.seed_prefix(state.slot, state.prompt)
                if reused:
                    state.ingested = reused
                    state.cached_prefix = reused
                    self.cached_prefix_tokens += reused
            remaining = state.prompt.shape[0] - state.ingested
            if budget is not None:
                remaining = min(remaining, budget - taken)
            slots.append(state.slot)
            chunks.append(state.prompt[state.ingested : state.ingested + remaining])
            states.append(state)
            taken += remaining
        rows = self.session.prefill_step(slots, chunks)
        for state, chunk, chunk_rows in zip(states, chunks, rows, strict=False):
            state.ingested += chunk.shape[0]
            self.session.record_prefix(state.slot, state.prompt[: state.ingested])
            if not state.ingesting:
                state.last_logits = chunk_rows[-1]
        self.prefill_tokens += taken
        self.prefill_steps += 1
        self.max_prefill_tokens_per_step = max(self.max_prefill_tokens_per_step, taken)
        if any(s.ingesting for s in self._active):
            self.prefill_stall_steps += 1

    def _finish(self, state: _ActiveRequest, reason: str) -> None:
        now = time.perf_counter()
        self._last_finish_time = now
        self.session.retire(state.slot)
        decode_s = max(now - state.admitted_time, 1e-12)
        self._results.append(
            RequestResult(
                request_id=state.request_id,
                tokens=np.concatenate(
                    [state.prompt, np.asarray(state.generated, dtype=np.int64)]
                ),
                prompt_length=state.prompt.shape[0],
                finish_reason=reason,
                queue_wait_steps=state.admitted_step - state.submitted_step,
                queue_wait_s=state.admitted_time - state.submitted_time,
                decode_s=decode_s,
                tokens_per_s=len(state.generated) / decode_s,
                cached_prefix_tokens=state.cached_prefix,
                drafted_tokens=state.drafted,
                accepted_draft_tokens=state.accepted,
                spec_steps=state.spec_steps,
            )
        )

    def step(self) -> bool:
        """One scheduler iteration; returns whether any work was done.

        Admit waiting requests into free room (allocate + prefix-cache
        seed), ingest up to ``prefill_chunk`` prompt tokens across the
        partially ingested residents, sample one token for every
        fully ingested request, retire the ones that hit EOS or their
        length budget, then decode the continuing batch in lock-step
        (one GEMM per weight matrix, ``m`` = continuing requests).
        Idle schedulers (nothing queued or resident) return ``False``
        without counting a step.
        """
        if not self._queue and not self._active:
            return False
        if self._first_busy_time is None:
            self._first_busy_time = time.perf_counter()
        self._admit()
        self._ingest()
        self._occupancy_total += len(self._active) / self.max_batch
        continuing: list[_ActiveRequest] = []
        tokens: list[int] = []
        remaining: list[_ActiveRequest] = []
        for state in self._active:
            if state.ingesting:
                remaining.append(state)  # still streaming its prompt in
                continue
            req = state.request
            token = select_token(
                state.last_logits, state.rng, req.top_k, req.temperature
            )
            state.generated.append(token)
            if req.eos_token is not None and token == req.eos_token:
                self._finish(state, "eos")
            elif len(state.generated) >= req.max_new:
                self._finish(state, "length")
            else:
                continuing.append(state)
                tokens.append(token)
                remaining.append(state)
        if continuing:
            if self.draft is not None and self.spec_k > 0:
                finished = self._verify_decode(continuing, tokens)
                if finished:
                    remaining = [s for s in remaining if id(s) not in finished]
            else:
                logits = self.session.decode_step(
                    [state.slot for state in continuing], tokens
                )
                for state, row in zip(continuing, logits, strict=False):
                    state.last_logits = row
                self.decode_tokens += len(continuing)
            self.decode_steps += 1
        self._active = remaining
        self.steps += 1
        self.busy_steps += 1
        return True

    def _verify_decode(
        self, states: list[_ActiveRequest], tokens: list[int]
    ) -> set[int]:
        """Speculative decode pass; returns ids of states it finished.

        Greedy residents draft up to ``spec_k`` tokens in lock-step
        (clamped to each request's remaining budget); one ragged verify
        pass appends every request's ``[token] + drafts`` window (one
        GEMM per weight matrix for the whole batch).  Each request
        emits its longest draft prefix matching its own argmax chain —
        retiring mid-window on EOS or a filled budget — and rolls the
        rejected suffix back out of its slot.  Sampling requests carry
        an empty window: for them this is exactly a decode step.
        """
        from repro.serve.speculative import _check_proposals, propose_batch

        vocab = self.session.config.vocab
        windows: list[int] = []
        for state in states:
            if state.request.top_k is not None:
                windows.append(0)
            else:
                windows.append(
                    min(
                        self.spec_k,
                        state.request.max_new - len(state.generated),
                    )
                )
        drafting = [i for i, w in enumerate(windows) if w > 0]
        drafts: list[np.ndarray] = [np.zeros(0, dtype=np.int64) for _ in states]
        if drafting:
            contexts = [
                np.concatenate(
                    [
                        states[i].prompt,
                        np.asarray(states[i].generated, dtype=np.int64),
                    ]
                )
                for i in drafting
            ]
            proposals = propose_batch(
                self.draft, contexts, max(windows[i] for i in drafting)
            )
            for i, proposed in zip(drafting, proposals, strict=False):
                drafts[i] = _check_proposals(
                    np.asarray(proposed)[: windows[i]], windows[i], vocab
                )
        bases = [self.session.position(state.slot) for state in states]
        blocks = [
            np.concatenate([[token], draft]).astype(np.int64)
            for token, draft in zip(tokens, drafts, strict=False)
        ]
        rows_per_state = self.session.verify_step(
            [state.slot for state in states], blocks
        )
        self.verify_steps += 1
        self.decode_tokens += sum(len(b) for b in blocks)
        finished: set[int] = set()
        for state, draft, base, rows in zip(states, drafts, bases, rows_per_state, strict=False):
            req = state.request
            if draft.shape[0]:
                state.drafted += draft.shape[0]
                state.spec_steps += 1
                self.drafted_tokens += draft.shape[0]
            j = 0
            next_token = int(np.argmax(rows[0]))
            terminal: str | None = None
            while j < draft.shape[0] and int(draft[j]) == next_token:
                state.generated.append(next_token)
                state.accepted += 1
                self.accepted_draft_tokens += 1
                j += 1
                if req.eos_token is not None and next_token == req.eos_token:
                    terminal = "eos"
                    break
                if len(state.generated) >= req.max_new:
                    terminal = "length"
                    break
                next_token = int(np.argmax(rows[j]))
            if terminal is not None:
                self._finish(state, terminal)
                finished.add(id(state))
            else:
                self.session.truncate(state.slot, base + 1 + j)
                state.last_logits = rows[j]
        return finished

    def skip_idle(self) -> None:
        """Advance the step clock through an idle tick (trace replay)."""
        self.steps += 1

    def run(self, requests: list[Request] | None = None) -> list[RequestResult]:
        """Submit ``requests`` (if given) and step until drained.

        Arrival times are ignored here — everything queues immediately;
        use :func:`repro.serve.replay` for arrival-paced traces.
        Returns completed results ordered by request id.
        """
        for request in requests or []:
            self.submit(request)
        while self.step():
            pass
        return self.results()

    # -- telemetry -----------------------------------------------------------

    def results(self) -> list[RequestResult]:
        """Completed requests so far, ordered by request id."""
        return sorted(self._results, key=lambda r: r.request_id)

    def stats(self) -> SchedulerStats:
        """Aggregate telemetry over this scheduler's lifetime."""
        done = self._results
        total_new = sum(len(r.new_tokens) for r in done)
        if self._first_busy_time is None or self._last_finish_time is None:
            elapsed = 0.0
        else:
            elapsed = max(self._last_finish_time - self._first_busy_time, 1e-12)
        return SchedulerStats(
            steps=self.steps,
            busy_steps=self.busy_steps,
            decode_steps=self.decode_steps,
            completed=len(done),
            rejected=self.rejected,
            max_batch=self.max_batch,
            mean_occupancy=(
                self._occupancy_total / self.busy_steps if self.busy_steps else 0.0
            ),
            total_new_tokens=total_new,
            elapsed_s=elapsed,
            aggregate_tokens_per_s=total_new / elapsed if elapsed else 0.0,
            mean_queue_wait_steps=(
                sum(r.queue_wait_steps for r in done) / len(done) if done else 0.0
            ),
            mean_queue_wait_s=(
                sum(r.queue_wait_s for r in done) / len(done) if done else 0.0
            ),
            prefill_tokens=self.prefill_tokens,
            cached_prefix_tokens=self.cached_prefix_tokens,
            decode_tokens=self.decode_tokens,
            prefill_steps=self.prefill_steps,
            prefill_stall_steps=self.prefill_stall_steps,
            max_prefill_tokens_per_step=self.max_prefill_tokens_per_step,
            drafted_tokens=self.drafted_tokens,
            accepted_draft_tokens=self.accepted_draft_tokens,
            verify_steps=self.verify_steps,
        )
