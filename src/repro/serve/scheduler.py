"""Continuous batching: a FIFO request queue over lock-step decode.

The scheduling model is the standard one (Orca/vLLM-style, scaled to
this repo): requests queue FIFO, the server admits up to ``max_batch``
of them into KV-cache slots, and every :meth:`Scheduler.step` decodes
**all** resident sequences in lock-step — one GEMM per weight matrix
with ``m = active`` rows.  Between steps the batch membership changes
continuously: finished sequences retire immediately (EOS or length
budget) and waiting requests join via ragged prefill, so the batch
never drains to refill (the "continuous" in continuous batching).

Admission control happens at :meth:`Scheduler.submit`: a request whose
``prompt + max_new`` cannot fit the model context window is rejected
up front with a :class:`~repro.errors.RequestError` (a ``ValueError``)
naming the limit — not accepted and then blown up positions deep
inside RoPE.

Telemetry is recorded per request (queue wait, decode time, tokens/s)
and in aggregate (:meth:`Scheduler.stats`: step counts, mean batch
occupancy, aggregate throughput); ``docs/serving.md`` documents every
field.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError, RequestError
from repro.model.session import check_tokens, select_token
from repro.serve.batch import BatchedSession


@dataclass(frozen=True)
class Request:
    """One generation request, as submitted to the scheduler.

    ``arrival`` is the replay timestamp in scheduler steps — only
    :func:`repro.serve.replay` interprets it (``submit`` queues
    immediately); it lets synthetic traces model requests arriving
    while the server is mid-decode.
    """

    prompt: np.ndarray
    max_new: int
    top_k: int | None = None
    temperature: float = 1.0
    seed: int = 0
    eos_token: int | None = None
    arrival: int = 0


@dataclass(frozen=True)
class RequestResult:
    """Outcome and per-request telemetry of one served request."""

    request_id: int
    tokens: np.ndarray  #: prompt + generated tokens
    prompt_length: int
    finish_reason: str  #: ``"length"`` or ``"eos"``
    queue_wait_steps: int  #: steps between submit and admission
    queue_wait_s: float  #: wall time between submit and admission
    decode_s: float  #: wall time between admission and completion
    tokens_per_s: float  #: generated tokens / ``decode_s``

    @property
    def new_tokens(self) -> np.ndarray:
        """The generated continuation only."""
        return self.tokens[self.prompt_length :]


@dataclass(frozen=True)
class SchedulerStats:
    """Aggregate telemetry over one scheduler lifetime."""

    steps: int  #: scheduler iterations, including idle ticks
    busy_steps: int  #: iterations that admitted, sampled or decoded
    decode_steps: int  #: iterations that issued a batched decode GEMM pass
    completed: int  #: requests finished
    rejected: int  #: requests refused at submit()
    max_batch: int  #: admission ceiling
    mean_occupancy: float  #: mean active/max_batch over busy steps
    total_new_tokens: int  #: generated tokens across completed requests
    elapsed_s: float  #: wall time from first busy step to last completion
    aggregate_tokens_per_s: float  #: total_new_tokens / elapsed_s
    mean_queue_wait_steps: float
    mean_queue_wait_s: float


@dataclass
class _ActiveRequest:
    """Scheduler-internal bookkeeping for one admitted request."""

    request_id: int
    request: Request
    prompt: np.ndarray
    rng: np.random.Generator
    submitted_step: int
    submitted_time: float
    slot: int = -1
    admitted_step: int = -1
    admitted_time: float = 0.0
    generated: list[int] = field(default_factory=list)
    last_logits: np.ndarray | None = None


class Scheduler:
    """FIFO admission + lock-step batched decode over a session.

    Drive it either request-by-request (:meth:`submit` then
    :meth:`step` until it returns ``False``) or in one call
    (:meth:`run`); :func:`repro.serve.replay` adds arrival-time
    semantics for trace replay.
    """

    def __init__(self, session: BatchedSession, max_batch: int | None = None) -> None:
        self.session = session
        self.max_batch = session.max_slots if max_batch is None else max_batch
        if not 1 <= self.max_batch <= session.max_slots:
            raise ConfigError(
                f"max_batch must lie in [1, {session.max_slots}] "
                f"(the session's slot count), got {self.max_batch}"
            )
        self.steps = 0
        self.busy_steps = 0
        self.decode_steps = 0
        self.rejected = 0
        self._occupancy_total = 0.0
        self._queue: deque[_ActiveRequest] = deque()
        self._active: list[_ActiveRequest] = []
        self._results: list[RequestResult] = []
        self._next_id = 0
        self._first_busy_time: float | None = None
        self._last_finish_time: float | None = None

    # -- request intake ------------------------------------------------------

    @property
    def queued(self) -> int:
        """Requests waiting for a batch slot."""
        return len(self._queue)

    @property
    def active(self) -> int:
        """Requests currently resident in the batch."""
        return len(self._active)

    def submit(self, request: Request) -> int:
        """Queue a request; returns its id.

        Rejects malformed prompts (:class:`~repro.errors.ConfigError`)
        and requests with invalid sampling parameters or that cannot
        fit the model context window
        (:class:`~repro.errors.RequestError`, a ``ValueError``) before
        they reach the decode path — never mid-step, where a failure
        would strand the other resident requests.
        """
        try:
            prompt = check_tokens(request.prompt, self.session.config.vocab)
            if request.max_new < 1:
                raise RequestError("max_new must be >= 1")
            if request.top_k is not None:
                if request.top_k < 1:
                    raise RequestError("top_k must be >= 1")
                if request.temperature <= 0:
                    raise RequestError("temperature must be > 0")
            window = self.session.context_window
            total = prompt.shape[0] + request.max_new
            if total > window:
                raise RequestError(
                    f"request needs {prompt.shape[0]} prompt + "
                    f"{request.max_new} new = {total} tokens, which exceeds "
                    f"the model context window max_seq={window}"
                )
        except (ConfigError, RequestError):
            self.rejected += 1
            raise
        request_id = self._next_id
        self._next_id += 1
        self._queue.append(
            _ActiveRequest(
                request_id=request_id,
                request=request,
                prompt=prompt,
                rng=np.random.default_rng(request.seed),
                submitted_step=self.steps,
                submitted_time=time.perf_counter(),
            )
        )
        return request_id

    # -- the scheduling loop -------------------------------------------------

    def _admit(self) -> int:
        """Join queued requests into free batch room via ragged prefill."""
        room = min(self.max_batch - len(self._active), self.session.free_slots)
        joining = []
        while self._queue and len(joining) < room:
            joining.append(self._queue.popleft())
        if not joining:
            return 0
        now = time.perf_counter()
        slots, last_logits = self.session.join([state.prompt for state in joining])
        for state, slot, logits in zip(joining, slots, last_logits):
            state.slot = slot
            state.admitted_step = self.steps
            state.admitted_time = now
            state.last_logits = logits
        self._active.extend(joining)
        return len(joining)

    def _finish(self, state: _ActiveRequest, reason: str) -> None:
        now = time.perf_counter()
        self._last_finish_time = now
        self.session.retire(state.slot)
        decode_s = max(now - state.admitted_time, 1e-12)
        self._results.append(
            RequestResult(
                request_id=state.request_id,
                tokens=np.concatenate(
                    [state.prompt, np.asarray(state.generated, dtype=np.int64)]
                ),
                prompt_length=state.prompt.shape[0],
                finish_reason=reason,
                queue_wait_steps=state.admitted_step - state.submitted_step,
                queue_wait_s=state.admitted_time - state.submitted_time,
                decode_s=decode_s,
                tokens_per_s=len(state.generated) / decode_s,
            )
        )

    def step(self) -> bool:
        """One scheduler iteration; returns whether any work was done.

        Admit waiting requests into free room (ragged prefill), sample
        one token for every resident request, retire the ones that hit
        EOS or their length budget, then decode the continuing batch in
        lock-step (one GEMM per weight matrix, ``m`` = continuing
        requests).  Idle schedulers (nothing queued or resident) return
        ``False`` without counting a step.
        """
        if not self._queue and not self._active:
            return False
        if self._first_busy_time is None:
            self._first_busy_time = time.perf_counter()
        self._admit()
        self._occupancy_total += len(self._active) / self.max_batch
        continuing: list[_ActiveRequest] = []
        tokens: list[int] = []
        for state in self._active:
            req = state.request
            token = select_token(
                state.last_logits, state.rng, req.top_k, req.temperature
            )
            state.generated.append(token)
            if req.eos_token is not None and token == req.eos_token:
                self._finish(state, "eos")
            elif len(state.generated) >= req.max_new:
                self._finish(state, "length")
            else:
                continuing.append(state)
                tokens.append(token)
        if continuing:
            logits = self.session.decode_step(
                [state.slot for state in continuing], tokens
            )
            for state, row in zip(continuing, logits):
                state.last_logits = row
            self.decode_steps += 1
        self._active = continuing
        self.steps += 1
        self.busy_steps += 1
        return True

    def skip_idle(self) -> None:
        """Advance the step clock through an idle tick (trace replay)."""
        self.steps += 1

    def run(self, requests: list[Request] | None = None) -> list[RequestResult]:
        """Submit ``requests`` (if given) and step until drained.

        Arrival times are ignored here — everything queues immediately;
        use :func:`repro.serve.replay` for arrival-paced traces.
        Returns completed results ordered by request id.
        """
        for request in requests or []:
            self.submit(request)
        while self.step():
            pass
        return self.results()

    # -- telemetry -----------------------------------------------------------

    def results(self) -> list[RequestResult]:
        """Completed requests so far, ordered by request id."""
        return sorted(self._results, key=lambda r: r.request_id)

    def stats(self) -> SchedulerStats:
        """Aggregate telemetry over this scheduler's lifetime."""
        done = self._results
        total_new = sum(len(r.new_tokens) for r in done)
        if self._first_busy_time is None or self._last_finish_time is None:
            elapsed = 0.0
        else:
            elapsed = max(self._last_finish_time - self._first_busy_time, 1e-12)
        return SchedulerStats(
            steps=self.steps,
            busy_steps=self.busy_steps,
            decode_steps=self.decode_steps,
            completed=len(done),
            rejected=self.rejected,
            max_batch=self.max_batch,
            mean_occupancy=(
                self._occupancy_total / self.busy_steps if self.busy_steps else 0.0
            ),
            total_new_tokens=total_new,
            elapsed_s=elapsed,
            aggregate_tokens_per_s=total_new / elapsed if elapsed else 0.0,
            mean_queue_wait_steps=(
                sum(r.queue_wait_steps for r in done) / len(done) if done else 0.0
            ),
            mean_queue_wait_s=(
                sum(r.queue_wait_s for r in done) / len(done) if done else 0.0
            ),
        )
