"""detlint — a determinism-contract static analyzer for this repo.

Every layer of the stack stakes its bit-exactness guarantees on code
*conventions*: matmul-shaped reductions go through
``np.einsum(optimize=False)`` instead of BLAS ``@``; order-sensitive
float accumulations use ``fp16_tree_sum`` or a documented
shape-stable reduction; directory scans are sorted before they feed
artifacts; RNGs are seeded ``np.random.Generator`` instances;
pool-backed KV state is copied (never aliased) across ownership
boundaries; and worker processes route through
:mod:`repro.core.procutil`.  detlint mechanizes those conventions as
AST rules so that "accidentally nondeterministic" is a lint failure
instead of a flaky token-identity test three layers downstream.

The package mirrors the :mod:`repro.engine` registry idiom:

* :mod:`repro.analysis.registry` — :class:`Rule` / :class:`Finding`
  models and the pluggable rule registry (:func:`register_rule`);
* :mod:`repro.analysis.contracts` — per-module determinism contracts
  declared in a committed ``detlint.toml``;
* :mod:`repro.analysis.suppress` — inline
  ``# detlint: ignore[RULE]: justification`` suppressions (hygiene is
  itself linted: a bare ignore or a missing justification is a
  finding, and stale suppressions are reported under ``--strict``);
* :mod:`repro.analysis.rules` — the shipped determinism rules
  (D001–D008), each targeting a failure mode this repo has actually
  hit or defended against;
* :mod:`repro.analysis.runner` — file walking, rule dispatch,
  suppression application and text/JSON reporting behind
  ``python -m repro lint``.

The package is pure stdlib (no numpy import) so it can lint the tree
from any environment that can parse it.
"""

from repro.analysis import rules as _rules  # noqa: F401  (registers the rule set)
from repro.analysis.contracts import (
    LintConfig,
    ModuleContract,
    find_config,
    load_config,
)
from repro.analysis.registry import (
    Finding,
    Rule,
    get_rule,
    list_rules,
    register_rule,
    rule_ids,
    unregister_rule,
)
from repro.analysis.runner import LintReport, lint_paths, render_findings
from repro.analysis.suppress import Suppression, parse_suppressions

__all__ = [
    "Finding",
    "LintConfig",
    "LintReport",
    "ModuleContract",
    "Rule",
    "Suppression",
    "find_config",
    "get_rule",
    "lint_paths",
    "list_rules",
    "load_config",
    "parse_suppressions",
    "register_rule",
    "render_findings",
    "rule_ids",
    "unregister_rule",
]
