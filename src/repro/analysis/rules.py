"""The shipped determinism rules (D001–D008).

Each rule mechanizes a convention this repo's bit-exactness story
already depends on — and that has either bitten in a past PR (the
snapshot-aliasing class behind D007) or is load-bearing in the
serving identity proofs (the einsum/tree-sum/sorted-iteration rules).
``docs/determinism.md`` states each convention's *why*; this module
is the *enforcement*.

Rule scoping:

* D001/D002/D003/D007 apply to modules with the ``deterministic``
  contract (the bit-exact envelope declared in ``detlint.toml``);
* D006 applies to ``deterministic`` and ``artifact`` modules;
* D004/D005 guard universal hazards and apply to every scanned file;
* D008 applies everywhere except ``process-owner`` modules.

Checkers yield ``(node, message)``; the runner stamps rule id and
severity (see :mod:`repro.analysis.registry`).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.registry import register_rule, register_virtual_rule

# ---------------------------------------------------------------------------
# Suppression hygiene (virtual: raised by the runner, not a checker).
# ---------------------------------------------------------------------------

register_virtual_rule(
    "D000",
    title="malformed suppression",
    severity="error",
    description=(
        "a '# detlint: ignore' marker without a [RULE] bracket, with a "
        "malformed rule id, or without a ': justification' tail waives "
        "nothing and is itself a finding"
    ),
    hint="write '# detlint: ignore[D00X]: why this line is exempt'",
)

register_virtual_rule(
    "D999",
    title="file does not parse",
    severity="error",
    description="a scanned file failed to parse; nothing in it was checked",
    hint="fix the syntax error (the interpreter will not load it either)",
)

register_virtual_rule(
    "D010",
    title="stale suppression",
    severity="warning",
    description=(
        "a suppression whose rule no longer fires on its line (reported "
        "under --strict so fixed code sheds its waivers)"
    ),
    hint="delete the '# detlint: ignore' marker — the rule it waived no "
    "longer fires here",
)


# ---------------------------------------------------------------------------
# Shared AST helpers.
# ---------------------------------------------------------------------------


def _call_name(ctx, node: ast.Call) -> str:
    """Canonical dotted name of a call target ('' when unresolvable)."""
    return ctx.qualname(node.func)


def _is_sorted_arg(ctx, node: ast.AST) -> bool:
    """Whether ``node`` is directly the argument of ``sorted(...)``."""
    parent = ctx.parent(node)
    return (
        isinstance(parent, ast.Call)
        and isinstance(parent.func, ast.Name)
        and parent.func.id == "sorted"
        and parent.args
        and parent.args[0] is node
    )


def _self_subscript(node: ast.AST) -> bool:
    """Whether ``node`` is a (nested) subscript of a ``self`` attribute."""
    while isinstance(node, ast.Subscript):
        node = node.value
    while isinstance(node, ast.Attribute):
        node = node.value
    return isinstance(node, ast.Name) and node.id == "self"


# ---------------------------------------------------------------------------
# D001 — BLAS matmul in the bit-exact envelope.
# ---------------------------------------------------------------------------

_D001_CALLS = {
    "numpy.matmul",
    "numpy.dot",
    "numpy.vdot",
    "numpy.inner",
    "numpy.tensordot",
}


@register_rule(
    "D001",
    title="BLAS matmul in a deterministic module",
    severity="error",
    description=(
        "'@' / np.matmul / np.dot block their accumulations by batch "
        "shape, so a row's result depends on how many neighbours it "
        "shares the GEMM with — breaking batch-row stability and "
        "trailing-zero stability, the two properties the serving "
        "identity proofs rest on"
    ),
    hint=(
        "route the product through repro.engine, or contract via "
        "np.einsum(..., optimize=False) whose per-element accumulation "
        "order is fixed by the reduction length alone"
    ),
)
def check_d001(ctx) -> Iterator[tuple[ast.AST, str]]:
    if not ctx.contract.deterministic:
        return
    for node in ctx.walk():
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.MatMult):
            yield (
                node,
                "'@' dispatches to BLAS, whose accumulation order depends "
                "on the batch shape",
            )
        elif isinstance(node, ast.Call):
            name = _call_name(ctx, node)
            if name in _D001_CALLS:
                yield (
                    node,
                    f"{name.replace('numpy', 'np')}() dispatches to BLAS, "
                    "whose accumulation order depends on the batch shape",
                )
            elif isinstance(node.func, ast.Attribute) and node.func.attr == "dot":
                yield (
                    node,
                    ".dot() dispatches to BLAS, whose accumulation order "
                    "depends on the batch shape",
                )


# ---------------------------------------------------------------------------
# D002 — einsum without optimize=False.
# ---------------------------------------------------------------------------


@register_rule(
    "D002",
    title="np.einsum without explicit optimize=False",
    severity="error",
    description=(
        "np.einsum's optimize= path may rewrite the contraction into "
        "BLAS calls (shape-dependent accumulation order); only the "
        "explicit optimize=False form keeps the per-output-element "
        "accumulation order fixed by the reduction length alone"
    ),
    hint="pass optimize=False explicitly (the default is not a contract)",
)
def check_d002(ctx) -> Iterator[tuple[ast.AST, str]]:
    for node in ctx.walk():
        if not isinstance(node, ast.Call):
            continue
        if _call_name(ctx, node) != "numpy.einsum":
            continue
        optimize = next(
            (kw.value for kw in node.keywords if kw.arg == "optimize"), None
        )
        if optimize is None:
            yield node, "np.einsum() without an explicit optimize=False"
        elif not (isinstance(optimize, ast.Constant) and optimize.value is False):
            yield (
                node,
                "np.einsum() with optimize != False may rewrite the "
                "contraction into shape-dependent BLAS calls",
            )


# ---------------------------------------------------------------------------
# D003 — order-sensitive float summation.
# ---------------------------------------------------------------------------


@register_rule(
    "D003",
    title="shape-dependent summation in a deterministic module",
    severity="warning",
    description=(
        "np.sum / ndarray.sum use pairwise summation whose association "
        "order depends on the reduced length and blocking, so a float "
        "accumulation is only order-stable if its shape argument can be "
        "shown batch-independent; every use inside the bit-exact "
        "envelope must either go through an order-fixed reduction or "
        "justify its exactness inline"
    ),
    hint=(
        "use repro.fp.vec.fp16_tree_sum (fixed association order) or add "
        "'# detlint: ignore[D003]: <why the order is stable or the sum "
        "exact>'"
    ),
)
def check_d003(ctx) -> Iterator[tuple[ast.AST, str]]:
    if not ctx.contract.deterministic:
        return
    for node in ctx.walk():
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(ctx, node)
        if name == "numpy.sum":
            yield node, "np.sum() is pairwise: association order is shape-dependent"
        elif isinstance(node.func, ast.Attribute) and node.func.attr == "sum":
            yield (
                node,
                ".sum() is pairwise: association order is shape-dependent",
            )


# ---------------------------------------------------------------------------
# D004 — unsorted directory iteration.
# ---------------------------------------------------------------------------

_D004_CALLS = {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
_D004_METHODS = {"glob", "rglob", "iterdir"}


@register_rule(
    "D004",
    title="unsorted directory iteration",
    severity="error",
    description=(
        "os.listdir / glob / Path.iterdir yield entries in filesystem "
        "order, which differs across machines and mounts; consuming the "
        "raw order makes manifests, caches and reports "
        "machine-dependent"
    ),
    hint="wrap the scan in sorted(...) before iterating or hashing it",
)
def check_d004(ctx) -> Iterator[tuple[ast.AST, str]]:
    for node in ctx.walk():
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(ctx, node)
        is_dir_scan = name in _D004_CALLS or (
            isinstance(node.func, ast.Attribute) and node.func.attr in _D004_METHODS
        )
        if not is_dir_scan:
            continue
        if _is_sorted_arg(ctx, node):
            continue
        label = name if name in _D004_CALLS else f".{node.func.attr}()"
        yield (
            node,
            f"{label} yields entries in filesystem order — sort before "
            "consuming",
        )


# ---------------------------------------------------------------------------
# D005 — unseeded / global-state RNG.
# ---------------------------------------------------------------------------

_D005_STDLIB = {
    "random.random",
    "random.randint",
    "random.randrange",
    "random.choice",
    "random.choices",
    "random.sample",
    "random.shuffle",
    "random.uniform",
    "random.gauss",
    "random.normalvariate",
    "random.getrandbits",
    "random.seed",
}


@register_rule(
    "D005",
    title="unseeded or global-state RNG",
    severity="error",
    description=(
        "module-level np.random.* calls and the stdlib random module "
        "draw from hidden global state, and default_rng() without a "
        "seed draws from the OS — either way the run is unrepeatable"
    ),
    hint="construct np.random.default_rng(seed) and pass it down",
)
def check_d005(ctx) -> Iterator[tuple[ast.AST, str]]:
    for node in ctx.walk():
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(ctx, node)
        if name == "numpy.random.default_rng":
            seeded = node.args and not (
                isinstance(node.args[0], ast.Constant)
                and node.args[0].value is None
            )
            if not (seeded or node.keywords):
                yield node, "default_rng() without a seed draws from the OS"
        elif name.startswith("numpy.random."):
            tail = name.rsplit(".", 1)[1]
            if tail != "default_rng" and tail[:1].islower():
                yield (
                    node,
                    f"np.random.{tail}() draws from numpy's hidden global "
                    "state",
                )
        elif name in _D005_STDLIB:
            yield node, f"{name}() draws from the stdlib's hidden global state"


# ---------------------------------------------------------------------------
# D006 — wall-clock and hash-order nondeterminism feeding artifacts.
# ---------------------------------------------------------------------------

_D006_CLOCKS = {
    "time.time",
    "time.time_ns",
    "time.ctime",
    "time.localtime",
    "time.gmtime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


@register_rule(
    "D006",
    title="wall clock / set-order nondeterminism in an artifact path",
    severity="error",
    description=(
        "wall-clock timestamps and raw set iteration order leak "
        "run-to-run noise into committed artifacts and bit-compared "
        "outputs (time.perf_counter is exempt: durations are telemetry, "
        "not artifact identity)"
    ),
    hint=(
        "derive timestamps from inputs (or drop them) and iterate "
        "sorted(<set>)"
    ),
)
def check_d006(ctx) -> Iterator[tuple[ast.AST, str]]:
    if not ctx.contract.contracted:
        return
    for node in ctx.walk():
        if isinstance(node, ast.Call):
            name = _call_name(ctx, node)
            if name in _D006_CLOCKS:
                yield (
                    node,
                    f"{name}() reads the wall clock — run-to-run noise in "
                    "an artifact path",
                )
        elif isinstance(node, (ast.For, ast.comprehension)):
            target = node.iter
            if isinstance(target, ast.Set) or (
                isinstance(target, ast.Call)
                and isinstance(target.func, ast.Name)
                and target.func.id in ("set", "frozenset")
            ):
                yield (
                    target,
                    "iterating a set draws on hash order — wrap in "
                    "sorted(...)",
                )


# ---------------------------------------------------------------------------
# D007 — returning live views of pool-backed state.
# ---------------------------------------------------------------------------


@register_rule(
    "D007",
    title="pool-backed view escapes without a copy",
    severity="error",
    description=(
        "returning a raw slice of self-owned array state hands the "
        "caller a live view into the pool: a later write to the slot "
        "silently rewrites the caller's 'snapshot' (the PR-6 "
        "prefix-cache aliasing class)"
    ),
    hint=(
        "return <slice>.copy() (or np.array(<slice>)) across ownership "
        "boundaries; deliberate read-only views need an ignore with the "
        "reason they cannot outlive the pool state"
    ),
)
def check_d007(ctx) -> Iterator[tuple[ast.AST, str]]:
    if not ctx.contract.deterministic:
        return
    for node in ctx.walk():
        if not isinstance(node, ast.Return) or node.value is None:
            continue
        value = node.value
        parts = value.elts if isinstance(value, ast.Tuple) else [value]
        for part in parts:
            if isinstance(part, ast.Subscript) and _self_subscript(part):
                yield (
                    part,
                    "returns a raw subscript of self-owned array state — a "
                    "live view if the base is pool-backed",
                )


# ---------------------------------------------------------------------------
# D008 — raw multiprocessing outside the process owner.
# ---------------------------------------------------------------------------

_D008_CALLS = {
    "multiprocessing.Process",
    "multiprocessing.Pool",
    "multiprocessing.Pipe",
    "multiprocessing.Queue",
    "multiprocessing.Manager",
    "multiprocessing.get_context",
    "multiprocessing.set_start_method",
    "concurrent.futures.ProcessPoolExecutor",
    "os.fork",
}


@register_rule(
    "D008",
    title="raw multiprocessing outside core.procutil",
    severity="error",
    description=(
        "spawning workers directly skips the repo's one place that "
        "picks the start method, pins the child's import path and "
        "daemonizes workers (repro.core.procutil); ad-hoc spawns drift "
        "on those choices and leak non-daemon children"
    ),
    hint=(
        "route worker spawns through repro.core.procutil "
        "(spawn_worker / pool_context)"
    ),
)
def check_d008(ctx) -> Iterator[tuple[ast.AST, str]]:
    if ctx.contract.process_owner:
        return
    for node in ctx.walk():
        if isinstance(node, ast.Call):
            name = _call_name(ctx, node)
            if name in _D008_CALLS:
                yield (
                    node,
                    f"{name}() spawns workers outside repro.core.procutil",
                )
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module.split(".")[0] == "multiprocessing":
                names = ", ".join(alias.name for alias in node.names)
                yield (
                    node,
                    f"importing {names} from {module} — worker plumbing "
                    "belongs in repro.core.procutil",
                )
