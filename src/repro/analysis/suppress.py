"""Inline suppressions: ``# detlint: ignore[RULE]: justification``.

A finding can be waived in place, but only *accountably*: the marker
must name the rule(s) it waives and carry a justification string, so
every exception to the determinism contract documents its own
reasoning next to the code.  Hygiene is itself linted:

* ``# detlint: ignore`` with no ``[RULE]`` bracket, an empty bracket,
  a malformed rule id or no justification is a **D000** finding;
* a suppression whose rule no longer fires on its line is *stale* and
  is reported as **D010** under ``--strict`` (so fixed code sheds its
  waivers instead of accumulating dead ones).

A marker on a code line covers that line; a marker on a comment-only
line covers the next code line (for statements too long to share a
line with their justification).
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass

from repro.analysis.registry import valid_rule_id

#: Marker syntax: ``detlint: ignore[D001, D003]: why this is exact anyway``
#: (as a trailing comment, or on its own line above the statement).
_MARKER = re.compile(
    r"#\s*detlint:\s*ignore"
    r"(?:\[(?P<rules>[^\]]*)\])?"
    r"(?P<colon>:)?\s*(?P<justification>.*)$"
)


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# detlint: ignore`` marker.

    Attributes:
        line: 1-based line the marker sits on.
        covers: 1-based line whose findings it waives (the next code
            line when the marker has a comment-only line to itself).
        rules: the rule ids it names (empty when malformed).
        justification: the free-text reason (empty when malformed).
        problems: hygiene defects, as report messages (non-empty means
            the marker is malformed and waives nothing).
    """

    line: int
    covers: int
    rules: tuple[str, ...]
    justification: str
    problems: tuple[str, ...] = ()

    @property
    def malformed(self) -> bool:
        return bool(self.problems)


def parse_suppressions(source: str) -> list[Suppression]:
    """Extract every ``detlint: ignore`` marker from ``source``.

    Markers are read off real ``COMMENT`` tokens (not raw lines), so
    docstrings and string literals that merely *mention* the marker
    syntax are never parsed as suppressions.
    """
    lines = source.splitlines()
    out: list[Suppression] = []
    for token in _comments(source):
        match = _MARKER.search(token.string)
        if match is None:
            continue
        line = token.start[0]
        covers = line
        before = lines[line - 1][: token.start[1]] if line <= len(lines) else ""
        if before.strip() == "":
            # Comment-only line: the marker covers the next code line.
            covers = _next_code_line(lines, line - 1) or line
        out.append(_build(match, line=line, covers=covers))
    return out


def _comments(source: str) -> list[tokenize.TokenInfo]:
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        return [t for t in tokens if t.type == tokenize.COMMENT]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Unparseable source reports through the runner's parse-error
        # finding; there is nothing to suppress in it.
        return []


def _next_code_line(lines: list[str], index: int) -> int | None:
    for offset in range(index + 1, len(lines)):
        stripped = lines[offset].strip()
        if stripped and not stripped.startswith("#"):
            return offset + 1
    return None


def _build(match: re.Match, *, line: int, covers: int) -> Suppression:
    problems: list[str] = []
    raw_rules = match.group("rules")
    rules: list[str] = []
    if raw_rules is None:
        problems.append(
            "suppression names no rule id — write "
            "'# detlint: ignore[D00X]: justification'"
        )
    else:
        for token in raw_rules.split(","):
            token = token.strip()
            if not token:
                continue
            if valid_rule_id(token):
                rules.append(token)
            else:
                problems.append(
                    f"suppression names a malformed rule id {token!r} "
                    "(expected 'D' + digits, e.g. D003)"
                )
        if not rules and not problems:
            problems.append(
                "suppression's rule bracket is empty — name the rule(s) "
                "it waives"
            )
    justification = match.group("justification").strip()
    if match.group("colon") is None or not justification:
        problems.append(
            "suppression carries no justification — every waiver must "
            "say why the code is exempt (': <reason>' after the bracket)"
        )
    return Suppression(
        line=line,
        covers=covers,
        rules=tuple(rules) if not problems else (),
        justification=justification if not problems else "",
        problems=tuple(problems),
    )
