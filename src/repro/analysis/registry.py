"""Rule and finding models, plus the pluggable rule registry.

A *rule* is a named check over one parsed source file.  The registry
is detlint's extension seam (mirroring the GEMM engine's backend
registry): project- or experiment-specific determinism checks plug in
by registering a new rule — no changes to the runner or the CLI.

Registering a custom rule::

    from repro.analysis import register_rule

    @register_rule(
        "D901",
        title="no float16 literals",
        severity="warning",
        hint="spell the constant through repro.fp.fp16",
    )
    def check_d901(ctx):
        # ctx: repro.analysis.runner.FileContext
        for node in ctx.walk():
            ...
            yield node, "message"

Checkers yield ``(ast.AST, message)`` pairs; the runner stamps them
into :class:`Finding` records with the rule's id and severity.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

from repro.errors import ConfigError

#: Checker signature: yields ``(node, message)`` for one file context.
CheckFn = Callable[[Any], Iterable[tuple[ast.AST, str]]]

#: Allowed severities, in increasing triage priority.
SEVERITIES = ("warning", "error")


@dataclass(frozen=True)
class Finding:
    """One rule violation (or suppression-hygiene report) in one file.

    Attributes:
        path: repo-relative posix path of the offending file.
        line: 1-based source line.
        col: 1-based source column.
        rule: rule id (``D001`` ...).
        severity: ``"error"`` or ``"warning"`` (triage metadata; any
            active finding fails the lint run).
        message: human-readable description of the violation.
        suppressed: whether an inline ``# detlint: ignore`` covered it.
    """

    path: str
    line: int
    col: int
    rule: str
    severity: str
    message: str
    suppressed: bool = False

    @property
    def location(self) -> str:
        """``file:line:col`` — the clickable report prefix."""
        return f"{self.path}:{self.line}:{self.col}"

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "suppressed": self.suppressed,
        }


@dataclass(frozen=True)
class Rule:
    """A registered determinism check.

    Attributes:
        id: registry key, ``D`` + digits (also the id named by inline
            suppressions and ``--rules`` filters).
        title: short kebab-ish summary (shown by ``lint --list-rules``).
        severity: default severity stamped onto findings.
        description: what the rule catches and why it matters.
        hint: how to fix a finding (the autofix guidance shown in
            reports).
        check: the checker; ``None`` for virtual rules the runner
            raises itself (suppression hygiene).
    """

    id: str
    title: str
    severity: str
    description: str = ""
    hint: str = ""
    check: CheckFn | None = field(default=None, repr=False)


_REGISTRY: dict[str, Rule] = {}


def register_rule(
    id: str,
    check: CheckFn | None = None,
    *,
    title: str,
    severity: str = "error",
    description: str = "",
    hint: str = "",
    overwrite: bool = False,
):
    """Register a rule; usable directly or as a decorator.

    Args:
        id: unique rule id (``D`` + digits, e.g. ``D001``).
        check: the checker function.  Omit to use the call as a
            decorator (virtual rules pass ``check=None`` explicitly
            via :func:`register_virtual_rule`).
        title: short summary.
        severity: default finding severity.
        description: what the rule catches.
        hint: fix guidance appended to reports.
        overwrite: allow replacing an existing registration.

    Returns:
        The :class:`Rule` record (direct call) or a decorator.

    Raises:
        ConfigError: on a malformed id/severity or a duplicate
            registration without ``overwrite``.
    """
    if check is None:

        def decorator(fn: CheckFn) -> CheckFn:
            register_rule(
                id,
                fn,
                title=title,
                severity=severity,
                description=description,
                hint=hint,
                overwrite=overwrite,
            )
            return fn

        return decorator

    _register(
        Rule(
            id=id,
            title=title,
            severity=severity,
            description=description,
            hint=hint,
            check=check,
        ),
        overwrite=overwrite,
    )
    return _REGISTRY[id]


def register_virtual_rule(
    id: str,
    *,
    title: str,
    severity: str = "error",
    description: str = "",
    hint: str = "",
) -> Rule:
    """Register a rule with no checker (raised by the runner itself)."""
    rule = Rule(
        id=id, title=title, severity=severity, description=description, hint=hint
    )
    _register(rule, overwrite=False)
    return rule


def _register(rule: Rule, *, overwrite: bool) -> None:
    if not valid_rule_id(rule.id):
        raise ConfigError(
            f"rule id must be 'D' + digits (e.g. D001), got {rule.id!r}"
        )
    if rule.severity not in SEVERITIES:
        raise ConfigError(
            f"rule {rule.id} severity must be one of {SEVERITIES}, "
            f"got {rule.severity!r}"
        )
    if not overwrite and rule.id in _REGISTRY:
        raise ConfigError(f"rule {rule.id!r} is already registered")
    _REGISTRY[rule.id] = rule


def valid_rule_id(text: str) -> bool:
    """Whether ``text`` has the ``D<digits>`` shape of a rule id."""
    return len(text) >= 2 and text[0] == "D" and text[1:].isdigit()


def unregister_rule(id: str) -> None:
    """Remove a rule registration (mainly for tests/extensions)."""
    if id not in _REGISTRY:
        raise ConfigError(f"unknown rule: {id!r}")
    del _REGISTRY[id]


def get_rule(id: str) -> Rule:
    """Look up a rule by id.

    Raises:
        ConfigError: for unknown ids, listing what is registered.
    """
    try:
        return _REGISTRY[id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "none"
        raise ConfigError(f"unknown rule: {id!r} (registered: {known})") from None


def list_rules() -> list[Rule]:
    """All registered rules, sorted by id."""
    return sorted(_REGISTRY.values(), key=lambda r: r.id)


def rule_ids() -> list[str]:
    """Sorted registered rule ids."""
    return sorted(_REGISTRY)


def checkable_rules() -> Iterator[Rule]:
    """Registered rules that carry a checker (non-virtual)."""
    for rule in list_rules():
        if rule.check is not None:
            yield rule
