"""File walking, rule dispatch, suppression application, reporting.

:func:`lint_paths` is the programmatic surface behind
``python -m repro lint``: it resolves the scan set from the config
(or explicit paths), parses each file once, runs every applicable
rule, applies inline suppressions (raising hygiene findings for
malformed or — under ``--strict`` — stale markers) and returns a
:class:`LintReport` whose findings are deterministically ordered by
``(path, line, col, rule)``.
"""

from __future__ import annotations

import ast
import json
import pathlib
import subprocess
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.analysis.contracts import LintConfig, ModuleContract
from repro.analysis.registry import (
    Finding,
    Rule,
    get_rule,
    list_rules,
    rule_ids,
)
from repro.analysis.suppress import Suppression, parse_suppressions
from repro.errors import ConfigError

#: Schema marker of the JSON findings artifact.
JSON_SCHEMA = "detlint/v1"

#: Virtual rule id stamped onto unparseable files.
PARSE_ERROR_RULE = "D999"


class FileContext:
    """One parsed source file, as seen by rule checkers.

    Attributes:
        path: repo-relative posix path (report prefix).
        module: dotted module name.
        contract: resolved :class:`ModuleContract`.
        tree: the parsed AST.
        source: raw source text.
    """

    def __init__(
        self,
        *,
        path: str,
        module: str,
        contract: ModuleContract,
        tree: ast.AST,
        source: str,
    ) -> None:
        self.path = path
        self.module = module
        self.contract = contract
        self.tree = tree
        self.source = source
        self._parents: dict[ast.AST, ast.AST] | None = None
        self._aliases: dict[str, str] | None = None

    def walk(self) -> Iterable[ast.AST]:
        return ast.walk(self.tree)

    def parent(self, node: ast.AST) -> ast.AST | None:
        """The syntactic parent of ``node`` (None for the root)."""
        if self._parents is None:
            self._parents = {
                child: parent
                for parent in ast.walk(self.tree)
                for child in ast.iter_child_nodes(parent)
            }
        return self._parents.get(node)

    @property
    def aliases(self) -> dict[str, str]:
        """Import aliases: bound name -> canonical dotted origin."""
        if self._aliases is None:
            self._aliases = _collect_aliases(self.tree, self.module)
        return self._aliases

    def qualname(self, node: ast.AST) -> str:
        """Canonical dotted name of an attribute/name chain.

        ``np.random.default_rng`` resolves through the file's import
        aliases to ``numpy.random.default_rng``; unresolvable chains
        (``self.foo[...]``, calls on locals) return their raw dotted
        spelling or ``''``.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return ""
        parts.append(node.id)
        parts.reverse()
        origin = self.aliases.get(parts[0])
        if origin is not None:
            parts[0:1] = origin.split(".")
        return ".".join(parts)


def _collect_aliases(tree: ast.AST, module: str) -> dict[str, str]:
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    aliases[head] = head
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                # Resolve 'from .sibling import x' against this module's
                # package so contracts written as absolute names match.
                package = module.split(".")
                package = package[: max(len(package) - node.level, 0)]
                base = ".".join(part for part in (".".join(package), base) if part)
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                aliases[bound] = f"{base}.{alias.name}" if base else alias.name
    return aliases


@dataclass(frozen=True)
class LintReport:
    """Outcome of one lint run.

    Attributes:
        findings: active (unsuppressed) findings, sorted.
        suppressed: findings waived by well-formed inline markers.
        files: number of files scanned.
        rules: rule ids that were applied.
    """

    findings: tuple[Finding, ...]
    suppressed: tuple[Finding, ...]
    files: int
    rules: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": JSON_SCHEMA,
            "files": self.files,
            "rules": list(self.rules),
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "summary": {
                "active": len(self.findings),
                "suppressed": len(self.suppressed),
                "by_rule": self.by_rule(),
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1, sort_keys=True) + "\n"

    def by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))


def lint_paths(
    config: LintConfig,
    paths: Sequence[str | pathlib.Path] | None = None,
    *,
    rules: Sequence[str] | None = None,
    strict: bool = False,
    changed_only: bool = False,
) -> LintReport:
    """Lint ``paths`` (default: the config's include set).

    Args:
        config: the loaded determinism contracts.
        paths: explicit files/directories to scan instead of the
            config's ``include`` list (still subject to ``exclude``).
        rules: restrict to these rule ids (hygiene rules always run).
        strict: additionally report stale suppressions (D010).
        changed_only: intersect the scan set with files modified or
            untracked per ``git status`` (for fast pre-commit runs).

    Raises:
        ConfigError: for unknown rule ids in ``rules`` or an explicit
            path that does not exist.
    """
    selected = _select_rules(config, rules)
    files = _scan_set(config, paths)
    if changed_only:
        changed = _changed_files(config.root)
        files = [f for f in files if f.resolve() in changed]

    active: list[Finding] = []
    suppressed: list[Finding] = []
    for file_path in files:
        file_active, file_suppressed = _lint_file(
            config, file_path, selected, strict=strict
        )
        active.extend(file_active)
        suppressed.extend(file_suppressed)

    return LintReport(
        findings=tuple(sorted(active, key=Finding.sort_key)),
        suppressed=tuple(sorted(suppressed, key=Finding.sort_key)),
        files=len(files),
        rules=tuple(rule.id for rule in selected),
    )


def _select_rules(config: LintConfig, rules: Sequence[str] | None) -> list[Rule]:
    if rules is not None:
        wanted = [get_rule(rule_id) for rule_id in rules]
    else:
        wanted = list_rules()
    unknown_disabled = set(config.disabled) - set(rule_ids())
    if unknown_disabled:
        raise ConfigError(
            f"detlint.toml disables unknown rule(s): {sorted(unknown_disabled)}"
        )
    return [
        rule
        for rule in wanted
        if rule.check is not None and rule.id not in config.disabled
    ]


def _scan_set(
    config: LintConfig, paths: Sequence[str | pathlib.Path] | None
) -> list[pathlib.Path]:
    roots = (
        [pathlib.Path(p) for p in paths]
        if paths
        else [config.root / include for include in config.include]
    )
    files: list[pathlib.Path] = []
    seen: set[pathlib.Path] = set()
    for root in roots:
        if root.is_dir():
            candidates = sorted(root.rglob("*.py"))
        elif root.is_file():
            candidates = [root]
        else:
            raise ConfigError(f"lint path does not exist: {root}")
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved in seen or config.excluded(candidate):
                continue
            seen.add(resolved)
            files.append(candidate)
    return files


def _changed_files(root: pathlib.Path) -> set[pathlib.Path]:
    """Files modified, staged or untracked per git (resolved paths)."""
    try:
        out = subprocess.run(
            ["git", "-C", str(root), "status", "--porcelain"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout
    except (OSError, subprocess.CalledProcessError) as exc:
        raise ConfigError(f"--changed-only needs a git work tree: {exc}") from exc
    changed: set[pathlib.Path] = set()
    for line in out.splitlines():
        if len(line) < 4:
            continue
        name = line[3:]
        if " -> " in name:  # rename: lint the new path
            name = name.split(" -> ", 1)[1]
        name = name.strip().strip('"')
        if name.endswith(".py"):
            changed.add((root / name).resolve())
    return changed


def _lint_file(
    config: LintConfig,
    file_path: pathlib.Path,
    selected: list[Rule],
    *,
    strict: bool,
) -> tuple[list[Finding], list[Finding]]:
    relpath = config.relpath(file_path)
    source = file_path.read_text()
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as exc:
        return (
            [
                Finding(
                    path=relpath,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1),
                    rule=PARSE_ERROR_RULE,
                    severity="error",
                    message=f"file does not parse: {exc.msg}",
                )
            ],
            [],
        )

    module = config.module_for(file_path)
    ctx = FileContext(
        path=relpath,
        module=module,
        contract=config.contract_for(module),
        tree=tree,
        source=source,
    )

    raw: list[Finding] = []
    for rule in selected:
        assert rule.check is not None
        for node, message in rule.check(ctx):
            raw.append(
                Finding(
                    path=relpath,
                    line=getattr(node, "lineno", 1),
                    col=getattr(node, "col_offset", 0) + 1,
                    rule=rule.id,
                    severity=rule.severity,
                    message=message,
                )
            )

    suppressions = parse_suppressions(source)
    return _apply_suppressions(
        raw, suppressions, relpath=relpath, strict=strict
    )


def _apply_suppressions(
    raw: list[Finding],
    suppressions: list[Suppression],
    *,
    relpath: str,
    strict: bool,
) -> tuple[list[Finding], list[Finding]]:
    active: list[Finding] = []
    suppressed: list[Finding] = []
    used: set[tuple[int, str]] = set()

    by_line: dict[int, list[Suppression]] = {}
    for sup in suppressions:
        if not sup.malformed:
            by_line.setdefault(sup.covers, []).append(sup)

    for finding in raw:
        waiver = next(
            (
                sup
                for sup in by_line.get(finding.line, ())
                if finding.rule in sup.rules
            ),
            None,
        )
        if waiver is None:
            active.append(finding)
        else:
            used.add((waiver.covers, finding.rule))
            suppressed.append(
                Finding(
                    path=finding.path,
                    line=finding.line,
                    col=finding.col,
                    rule=finding.rule,
                    severity=finding.severity,
                    message=f"{finding.message} [waived: {waiver.justification}]",
                    suppressed=True,
                )
            )

    d000 = get_rule("D000")
    for sup in suppressions:
        for problem in sup.problems:
            active.append(
                Finding(
                    path=relpath,
                    line=sup.line,
                    col=1,
                    rule=d000.id,
                    severity=d000.severity,
                    message=problem,
                )
            )

    if strict:
        d010 = get_rule("D010")
        for sup in suppressions:
            if sup.malformed:
                continue
            for rule_id in sup.rules:
                if (sup.covers, rule_id) not in used:
                    active.append(
                        Finding(
                            path=relpath,
                            line=sup.line,
                            col=1,
                            rule=d010.id,
                            severity=d010.severity,
                            message=(
                                f"stale suppression: {rule_id} no longer "
                                f"fires on line {sup.covers}"
                            ),
                        )
                    )
    return active, suppressed


def render_findings(report: LintReport, *, verbose: bool = False) -> str:
    """Human-readable report: one ``file:line:col`` line per finding."""
    lines: list[str] = []
    for finding in report.findings:
        lines.append(
            f"{finding.location}: {finding.rule} [{finding.severity}] "
            f"{finding.message}"
        )
        if verbose:
            hint = get_rule(finding.rule).hint
            if hint:
                lines.append(f"    hint: {hint}")
    counts = ", ".join(
        f"{rule}={count}" for rule, count in report.by_rule().items()
    )
    if report.findings:
        lines.append(
            f"detlint: {len(report.findings)} finding(s) across "
            f"{report.files} file(s) [{counts}]; "
            f"{len(report.suppressed)} suppressed"
        )
    else:
        lines.append(
            f"detlint: clean — {report.files} file(s), "
            f"{len(report.rules)} rule(s), "
            f"{len(report.suppressed)} justified suppression(s)"
        )
    return "\n".join(lines)
