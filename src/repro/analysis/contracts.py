"""Per-module determinism contracts, declared in ``detlint.toml``.

A *contract* says which guarantees a module is on the hook for, so
rules can scope themselves to where they are meaningful:

* ``deterministic`` — the module is inside the bit-exact envelope:
  its float reductions must be order-stable (D001/D002/D003) and it
  must never hand out live views of pool-backed state (D007).
* ``artifact`` — the module produces committed/compared artifacts
  (reports, caches, manifests): wall-clock timestamps and
  hash-order-dependent iteration must stay out of them (D006).
* ``process-owner`` — the module is allowed to touch raw
  ``multiprocessing`` primitives; everything else must route worker
  spawns through it (D008).

Patterns are dotted module prefixes (``repro.serve`` covers
``repro.serve.prefix``) and may use ``fnmatch`` wildcards (``*``
matches everything — handy for fixture corpora).  The rules that
guard *universal* hazards (unsorted directory scans, unseeded RNGs)
apply to every scanned file regardless of contract.

``detlint.toml`` is parsed with :mod:`tomllib` where available
(Python >= 3.11) and falls back to a small built-in parser covering
the subset this config actually uses (tables, strings, booleans,
integers and single- or multi-line string lists) so the linter runs
on Python 3.10 without any third-party dependency.
"""

from __future__ import annotations

import ast
import fnmatch
import pathlib
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigError

try:  # Python >= 3.11
    import tomllib
except ImportError:  # pragma: no cover - exercised on 3.10 CI only
    tomllib = None

#: The committed config file name, discovered upward from the cwd.
CONFIG_NAME = "detlint.toml"


@dataclass(frozen=True)
class ModuleContract:
    """The resolved contract flags for one module."""

    module: str
    deterministic: bool = False
    artifact: bool = False
    process_owner: bool = False

    @property
    def contracted(self) -> bool:
        """Whether any determinism contract applies to the module."""
        return self.deterministic or self.artifact


@dataclass(frozen=True)
class LintConfig:
    """Everything ``detlint.toml`` declares.

    Attributes:
        root: directory the config was loaded from; ``include`` /
            ``exclude`` / ``src_roots`` paths resolve against it.
        include: directories (or files) scanned by default.
        exclude: ``fnmatch`` patterns over repo-relative posix paths;
            matching files are skipped.
        src_roots: import roots used to derive dotted module names
            from file paths (``src/repro/fp/add.py`` -> ``repro.fp.add``).
        deterministic / artifact / process_owner: module-prefix (or
            fnmatch) patterns granting the respective contract.
        disabled: rule ids switched off for the whole tree.
    """

    root: pathlib.Path
    include: tuple[str, ...] = ("src/repro",)
    exclude: tuple[str, ...] = ()
    src_roots: tuple[str, ...] = ("src",)
    deterministic: tuple[str, ...] = ()
    artifact: tuple[str, ...] = ()
    process_owner: tuple[str, ...] = ()
    disabled: tuple[str, ...] = ()
    _contract_cache: dict[str, ModuleContract] = field(
        default_factory=dict, repr=False, compare=False
    )

    def relpath(self, path: pathlib.Path) -> str:
        """Repo-relative posix path (falls back to the name outside)."""
        try:
            return path.resolve().relative_to(self.root.resolve()).as_posix()
        except ValueError:
            return path.as_posix()

    def excluded(self, path: pathlib.Path) -> bool:
        rel = self.relpath(path)
        return any(fnmatch.fnmatch(rel, pattern) for pattern in self.exclude)

    def module_for(self, path: pathlib.Path) -> str:
        """Dotted module name for ``path`` under a source root.

        Files outside every source root fall back to their stem, so
        standalone scripts and fixture files still get a (contractable)
        name.
        """
        rel = self.relpath(path)
        parts = pathlib.PurePosixPath(rel).parts
        for root in self.src_roots:
            root_parts = pathlib.PurePosixPath(root).parts
            if parts[: len(root_parts)] == root_parts:
                tail = parts[len(root_parts) :]
                dotted = ".".join(tail)
                for suffix in (".__init__.py", ".py"):
                    if dotted.endswith(suffix):
                        return dotted[: -len(suffix)]
                return dotted
        return pathlib.PurePosixPath(rel).stem

    def contract_for(self, module: str) -> ModuleContract:
        """Resolve the contract flags for a dotted module name."""
        cached = self._contract_cache.get(module)
        if cached is None:
            cached = ModuleContract(
                module=module,
                deterministic=_matches(module, self.deterministic),
                artifact=_matches(module, self.artifact),
                process_owner=_matches(module, self.process_owner),
            )
            self._contract_cache[module] = cached
        return cached


def _matches(module: str, patterns: tuple[str, ...]) -> bool:
    for pattern in patterns:
        if module == pattern or module.startswith(pattern + "."):
            return True
        if fnmatch.fnmatch(module, pattern):
            return True
    return False


# ---------------------------------------------------------------------------
# Config loading.
# ---------------------------------------------------------------------------


def find_config(start: pathlib.Path | None = None) -> pathlib.Path | None:
    """Locate ``detlint.toml`` in ``start`` or any parent directory."""
    here = (start or pathlib.Path.cwd()).resolve()
    for directory in (here, *here.parents):
        candidate = directory / CONFIG_NAME
        if candidate.is_file():
            return candidate
    return None


def load_config(path: str | pathlib.Path) -> LintConfig:
    """Parse a ``detlint.toml`` into a :class:`LintConfig`.

    Raises:
        ConfigError: on unreadable/garbled TOML or unknown keys (a
            typoed contract name must fail loudly, not silently lint
            nothing).
    """
    config_path = pathlib.Path(path)
    if not config_path.is_file():
        raise ConfigError(f"no detlint config at {config_path}")
    data = _parse_toml(config_path)

    run = _table(data, "run")
    contracts = _table(data, "contracts")
    rules = _table(data, "rules")
    for section, allowed in (
        (run, {"include", "exclude", "src-roots"}),
        (contracts, {"deterministic", "artifact", "process-owner"}),
        (rules, {"disable"}),
    ):
        unknown = set(section) - allowed
        if unknown:
            raise ConfigError(
                f"{config_path}: unknown key(s) {sorted(unknown)} "
                f"(allowed: {sorted(allowed)})"
            )
    extra = set(data) - {"run", "contracts", "rules"}
    if extra:
        raise ConfigError(
            f"{config_path}: unknown table(s) {sorted(extra)} "
            "(allowed: run, contracts, rules)"
        )

    return LintConfig(
        root=config_path.parent,
        include=_strings(run, "include", config_path, default=("src/repro",)),
        exclude=_strings(run, "exclude", config_path, default=()),
        src_roots=_strings(run, "src-roots", config_path, default=("src",)),
        deterministic=_strings(contracts, "deterministic", config_path, default=()),
        artifact=_strings(contracts, "artifact", config_path, default=()),
        process_owner=_strings(contracts, "process-owner", config_path, default=()),
        disabled=_strings(rules, "disable", config_path, default=()),
    )


def _table(data: dict[str, Any], name: str) -> dict[str, Any]:
    value = data.get(name, {})
    if not isinstance(value, dict):
        raise ConfigError(f"detlint.toml [{name}] must be a table")
    return value


def _strings(
    table: dict[str, Any],
    key: str,
    path: pathlib.Path,
    *,
    default: tuple[str, ...],
) -> tuple[str, ...]:
    if key not in table:
        return default
    value = table[key]
    if not isinstance(value, list) or not all(isinstance(v, str) for v in value):
        raise ConfigError(f"{path}: {key} must be a list of strings")
    return tuple(value)


def _parse_toml(path: pathlib.Path) -> dict[str, Any]:
    text = path.read_text()
    if tomllib is not None:
        try:
            return tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise ConfigError(f"garbled {path}: {exc}") from exc
    return _parse_toml_subset(text, path)


def _parse_toml_subset(text: str, path: pathlib.Path) -> dict[str, Any]:
    """Parse the TOML subset ``detlint.toml`` uses (3.10 fallback).

    Supported: ``[table]`` headers, ``key = value`` with string, bool,
    integer or (possibly multi-line) list-of-strings values, ``#``
    comments.  Anything fancier fails loudly rather than misreading
    the contract.
    """
    data: dict[str, Any] = {}
    table = data
    pending_key: str | None = None
    pending: list[str] = []

    def fail(line_no: int, line: str) -> ConfigError:
        return ConfigError(
            f"garbled {path} at line {line_no}: {line.strip()!r} "
            "(the 3.10 fallback parser supports tables, strings, "
            "booleans, integers and lists of strings)"
        )

    def literal(raw: str, line_no: int):
        raw = raw.strip()
        if raw in ("true", "false"):
            return raw == "true"
        try:
            value = ast.literal_eval(raw)
        except (ValueError, SyntaxError):
            raise fail(line_no, raw) from None
        if isinstance(value, (str, int, list)):
            return value
        raise fail(line_no, raw)

    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw_line).strip()
        if pending_key is not None:
            pending.append(line)
            joined = " ".join(pending)
            if joined.count("[") == joined.count("]"):
                table[pending_key] = literal(joined, line_no)
                pending_key, pending = None, []
            continue
        if not line:
            continue
        if line.startswith("[") and line.endswith("]"):
            name = line[1:-1].strip()
            if not name or "." in name or '"' in name:
                raise fail(line_no, raw_line)
            table = data.setdefault(name, {})
            continue
        key, sep, value = line.partition("=")
        key = key.strip()
        if not sep or not key:
            raise fail(line_no, raw_line)
        if value.strip().startswith("[") and value.count("[") != value.count("]"):
            pending_key, pending = key, [value]
            continue
        table[key] = literal(value, line_no)
    if pending_key is not None:
        raise ConfigError(f"garbled {path}: unterminated list for {pending_key!r}")
    return data


def _strip_comment(line: str) -> str:
    """Drop a ``#`` comment that is not inside a double-quoted string."""
    quoted = False
    for i, char in enumerate(line):
        if char == '"':
            quoted = not quoted
        elif char == "#" and not quoted:
            return line[:i]
    return line
