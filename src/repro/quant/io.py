"""Serialization of quantized / packed weights (.npz checkpoints).

Deployment pipelines quantize once and load many times; this module
round-trips :class:`~repro.quant.rtn.QuantizedMatrix` and
:class:`~repro.quant.packing.PackedMatrix` objects through NumPy's
``.npz`` container, preserving group geometry, scheme flags and
packing layout so a loaded checkpoint drops straight into
:func:`repro.core.gemm.hyper_gemm` or the simulator flows.
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.errors import QuantizationError
from repro.quant.groups import GroupSpec
from repro.quant.packing import PackDim, PackedMatrix, PackSpec
from repro.quant.rtn import QuantizedMatrix

#: Format marker stored in every checkpoint.
FORMAT_VERSION = 1


def save_quantized(path: str | pathlib.Path, qm: QuantizedMatrix) -> None:
    """Write a quantized matrix to ``path`` (.npz)."""
    np.savez_compressed(
        path,
        kind="quantized",
        version=FORMAT_VERSION,
        codes=qm.codes,
        scales=qm.scales,
        zeros=qm.zeros,
        bits=qm.bits,
        group_k=qm.group.k,
        group_n=qm.group.n,
        symmetric=qm.symmetric,
    )


def load_quantized(path: str | pathlib.Path) -> QuantizedMatrix:
    """Read a quantized matrix written by :func:`save_quantized`."""
    with np.load(path, allow_pickle=False) as data:
        _check(data, "quantized")
        return QuantizedMatrix(
            codes=data["codes"],
            scales=data["scales"],
            zeros=data["zeros"],
            bits=int(data["bits"]),
            group=GroupSpec(int(data["group_k"]), int(data["group_n"])),
            symmetric=bool(data["symmetric"]),
        )


def save_packed(path: str | pathlib.Path, packed: PackedMatrix) -> None:
    """Write a packed matrix to ``path`` (.npz)."""
    np.savez_compressed(
        path,
        kind="packed",
        version=FORMAT_VERSION,
        words=packed.words,
        bits=packed.spec.bits,
        dim=packed.spec.dim.value,
        k_dim=packed.k_dim,
        n_dim=packed.n_dim,
    )


def load_packed(path: str | pathlib.Path) -> PackedMatrix:
    """Read a packed matrix written by :func:`save_packed`."""
    with np.load(path, allow_pickle=False) as data:
        _check(data, "packed")
        return PackedMatrix(
            words=data["words"],
            spec=PackSpec(int(data["bits"]), PackDim(str(data["dim"]))),
            k_dim=int(data["k_dim"]),
            n_dim=int(data["n_dim"]),
        )


def _check(data, expected_kind: str) -> None:
    if "kind" not in data or str(data["kind"]) != expected_kind:
        raise QuantizationError(f"not a {expected_kind} checkpoint")
    if "version" not in data:
        raise QuantizationError(
            f"{expected_kind} checkpoint carries no format version"
        )
    version = int(data["version"])
    if version != FORMAT_VERSION:
        newer = "newer than" if version > FORMAT_VERSION else "older than"
        raise QuantizationError(
            f"checkpoint format version {version} is {newer} the supported "
            f"version {FORMAT_VERSION}; re-save the matrix with this library"
        )
