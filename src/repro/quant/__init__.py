"""Weight-only quantization and packing library (paper Sections III, V).

* :mod:`repro.quant.groups` — group geometry (``g128``, ``g[32,4]``...).
* :mod:`repro.quant.rtn` — round-to-nearest PTQ over ``[k, n]`` matrices.
* :mod:`repro.quant.packing` — ``P(Bx)y`` INT16 bit-packing along k or n.
* :mod:`repro.quant.error` — MSE / SQNR reporting.
"""

from repro.quant.algorithms import (
    AwqResult,
    awq_dequantize,
    awq_quantize,
    gptq_quantize,
)
from repro.quant.error import QuantErrorReport, mse, report, sqnr_db
from repro.quant.groups import (
    G32_4,
    G64_4,
    G128,
    G256,
    TABLE2_SPECS,
    GroupSpec,
    spec_from_label,
)
from repro.quant.io import (
    load_packed,
    load_quantized,
    save_packed,
    save_quantized,
)
from repro.quant.packing import (
    PackDim,
    PackedMatrix,
    PackSpec,
    pack,
    pack_word,
    unpack,
    unpack_word,
)
from repro.quant.rtn import QuantizedMatrix, RtnQuantizer, dequantize, quantize_rtn

__all__ = [
    "AwqResult",
    "G128",
    "G256",
    "G32_4",
    "G64_4",
    "GroupSpec",
    "PackDim",
    "PackSpec",
    "PackedMatrix",
    "QuantErrorReport",
    "QuantizedMatrix",
    "RtnQuantizer",
    "TABLE2_SPECS",
    "awq_dequantize",
    "awq_quantize",
    "dequantize",
    "gptq_quantize",
    "load_packed",
    "load_quantized",
    "save_packed",
    "save_quantized",
    "mse",
    "pack",
    "pack_word",
    "quantize_rtn",
    "report",
    "spec_from_label",
    "sqnr_db",
    "unpack",
    "unpack_word",
]
