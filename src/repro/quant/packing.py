"""Bit-packing of INT weights into INT16 words — ``P(Bx)y`` (Section III).

The paper's notation ``P(Bx)y`` packs ``x`` weight codes of matrix
``B`` into one INT16 word along dimension ``y``:

* ``P(B4)k`` — four INT4 codes at ``B[k:k+4, n]`` per word (the
  convention of existing LLM frameworks, and the paper's inefficient
  baseline);
* ``P(B4)n`` — four INT4 codes at ``B[k, n:n+4]`` per word (PacQ's
  proposal); likewise ``P(B8)k`` / ``P(B8)n`` for INT2.

Packing stores the *unsigned re-biased* codes ``B + 2**(bits-1)``
(e.g. ``B + 8`` for INT4), matching the transform the parallel FP-INT
multiplier expects: its mantissa trick needs ``B + 8 + 1024`` in
``[1024, 2048)``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import QuantizationError

#: Width of one packed storage word, per the paper (INT16).
WORD_BITS = 16


class PackDim(enum.Enum):
    """Dimension along which consecutive codes share a word."""

    K = "k"
    N = "n"


@dataclass(frozen=True)
class PackSpec:
    """How a ``[k, n]`` code matrix is packed into INT16 words.

    Attributes:
        bits: weight precision (2 or 4 in the paper).
        dim: packing dimension.
    """

    bits: int
    dim: PackDim

    def __post_init__(self) -> None:
        if WORD_BITS % self.bits:
            raise QuantizationError(f"INT{self.bits} does not tile an INT16 word")

    @property
    def elems_per_word(self) -> int:
        """Codes per INT16 word (4 for INT4, 8 for INT2)."""
        return WORD_BITS // self.bits

    @property
    def label(self) -> str:
        """Paper-style label, e.g. ``P(B4)k``."""
        return f"P(B{self.elems_per_word}){self.dim.value}"

    @property
    def rebias(self) -> int:
        """Offset making signed codes unsigned (8 for INT4, 2 for INT2)."""
        return 1 << (self.bits - 1)


@dataclass(frozen=True)
class PackedMatrix:
    """A bit-packed weight matrix.

    Attributes:
        words: uint16 array.  For ``dim == K`` the shape is
            ``[k / e, n]``; for ``dim == N`` it is ``[k, n / e]``
            where ``e`` is ``elems_per_word``.
        spec: the packing layout.
        k_dim: logical k extent of the unpacked matrix.
        n_dim: logical n extent of the unpacked matrix.
    """

    words: np.ndarray
    spec: PackSpec
    k_dim: int
    n_dim: int

    @property
    def num_words(self) -> int:
        return int(self.words.size)

    def storage_bits(self) -> int:
        return self.num_words * WORD_BITS


def pack(codes: np.ndarray, spec: PackSpec) -> PackedMatrix:
    """Pack signed codes ``B in [-2**(b-1), 2**(b-1) - 1]`` into words.

    The first element along the packing dimension occupies the least
    significant field of the word, matching little-endian nibble
    packing used by AutoGPTQ-style frameworks.
    """
    if codes.ndim != 2:
        raise QuantizationError(f"expected a [k, n] matrix, got shape {codes.shape}")
    lo, hi = -spec.rebias, spec.rebias - 1
    if codes.min(initial=0) < lo or codes.max(initial=0) > hi:
        raise QuantizationError(
            f"codes out of INT{spec.bits} range [{lo}, {hi}]"
        )
    unsigned = (codes.astype(np.int32) + spec.rebias).astype(np.uint32)
    k_dim, n_dim = codes.shape
    e = spec.elems_per_word

    if spec.dim is PackDim.K:
        if k_dim % e:
            raise QuantizationError(f"k={k_dim} not divisible by {e} for {spec.label}")
        grouped = unsigned.reshape(k_dim // e, e, n_dim)
        shifts = (np.arange(e, dtype=np.uint32) * spec.bits)[None, :, None]
    else:
        if n_dim % e:
            raise QuantizationError(f"n={n_dim} not divisible by {e} for {spec.label}")
        grouped = unsigned.reshape(k_dim, n_dim // e, e)
        shifts = (np.arange(e, dtype=np.uint32) * spec.bits)[None, None, :]

    # detlint: ignore[D003]: uint32 integer sum — exact in any order.
    words = (grouped << shifts).sum(
        axis=1 if spec.dim is PackDim.K else 2, dtype=np.uint32
    )
    return PackedMatrix(words.astype(np.uint16), spec, k_dim, n_dim)


def unpack(packed: PackedMatrix) -> np.ndarray:
    """Recover the signed codes from a packed matrix (inverse of :func:`pack`)."""
    spec = packed.spec
    e = spec.elems_per_word
    mask = np.uint32((1 << spec.bits) - 1)
    words = packed.words.astype(np.uint32)
    shifts = np.arange(e, dtype=np.uint32) * spec.bits

    if spec.dim is PackDim.K:
        fields = (words[:, None, :] >> shifts[None, :, None]) & mask
        unsigned = fields.reshape(packed.k_dim, packed.n_dim)
    else:
        fields = (words[:, :, None] >> shifts[None, None, :]) & mask
        unsigned = fields.reshape(packed.k_dim, packed.n_dim)
    return unsigned.astype(np.int16) - spec.rebias


def unpack_word(word: int, spec: PackSpec) -> list[int]:
    """Unpack one INT16 word to its signed codes (LSB field first)."""
    mask = (1 << spec.bits) - 1
    return [
        ((word >> (i * spec.bits)) & mask) - spec.rebias
        for i in range(spec.elems_per_word)
    ]


def pack_word(codes: list[int], spec: PackSpec) -> int:
    """Pack up to ``elems_per_word`` signed codes into one INT16 word."""
    if len(codes) > spec.elems_per_word:
        raise QuantizationError(
            f"{len(codes)} codes do not fit one {spec.label} word"
        )
    word = 0
    for i, code in enumerate(codes):
        unsigned = code + spec.rebias
        if not 0 <= unsigned < (1 << spec.bits):
            raise QuantizationError(f"code {code} out of INT{spec.bits} range")
        word |= unsigned << (i * spec.bits)
    return word
