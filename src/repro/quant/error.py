"""Quantization error metrics used by the Table II analysis."""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.quant.rtn import QuantizedMatrix


def mse(reference: np.ndarray, approximation: np.ndarray) -> float:
    """Mean squared error between two arrays."""
    diff = np.asarray(reference, dtype=np.float64) - np.asarray(
        approximation, dtype=np.float64
    )
    return float(np.mean(diff * diff))


def sqnr_db(reference: np.ndarray, approximation: np.ndarray) -> float:
    """Signal-to-quantization-noise ratio in dB (higher is better)."""
    signal = float(np.mean(np.square(np.asarray(reference, dtype=np.float64))))
    noise = mse(reference, approximation)
    if noise == 0.0:
        return math.inf
    if signal == 0.0:
        return -math.inf
    return 10.0 * math.log10(signal / noise)


@dataclass(frozen=True)
class QuantErrorReport:
    """Error summary for one quantization configuration."""

    label: str
    bits: int
    mse: float
    sqnr_db: float
    max_abs_err: float

    def __str__(self) -> str:
        return (
            f"{self.label}: INT{self.bits} mse={self.mse:.3e} "
            f"sqnr={self.sqnr_db:.2f}dB max|e|={self.max_abs_err:.3e}"
        )


def report(weights: np.ndarray, qm: QuantizedMatrix) -> QuantErrorReport:
    """Build a :class:`QuantErrorReport` for a quantized matrix."""
    recon = qm.dequantize()
    return QuantErrorReport(
        label=qm.group.label,
        bits=qm.bits,
        mse=mse(weights, recon),
        sqnr_db=sqnr_db(weights, recon),
        max_abs_err=float(np.max(np.abs(weights - recon))),
    )
