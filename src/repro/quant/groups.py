"""Quantization group geometry (paper Table II).

Weight-only PTQ assigns one scale (and optionally one zero point) per
*group* of weight elements.  Conventional frameworks form groups along
the input-feature dimension only — ``g128`` means 128 consecutive ``k``
elements share a scale.  The paper's PacQ-friendly variant spans groups
across both dimensions: ``g[32, 4]`` keeps the same 128-element group
*size* but shapes it as 32 elements along ``k`` times 4 along ``n``,
which lets the general core fetch one scale per packed-``n`` word
(Fig. 6, step 3).

Weight matrices here follow the paper's convention: ``B`` has shape
``[k, n]`` (input features x output features).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import QuantizationError


@dataclass(frozen=True)
class GroupSpec:
    """Shape of one quantization group over a ``[k, n]`` weight matrix.

    Attributes:
        k: group extent along the input-feature dimension.
        n: group extent along the output-feature dimension.

    ``GroupSpec(128, 1)`` is the paper's ``g128``;
    ``GroupSpec(32, 4)`` is ``g[32, 4]``.
    """

    k: int
    n: int = 1

    def __post_init__(self) -> None:
        if self.k < 1 or self.n < 1:
            raise QuantizationError(f"group extents must be >= 1, got {self}")

    @property
    def size(self) -> int:
        """Number of weight elements sharing one scale."""
        return self.k * self.n

    @property
    def label(self) -> str:
        """Paper-style label, e.g. ``g128`` or ``g[32,4]``."""
        if self.n == 1:
            return f"g{self.k}"
        return f"g[{self.k},{self.n}]"

    def validate_for(self, k_dim: int, n_dim: int) -> None:
        """Check the spec tiles a ``[k_dim, n_dim]`` matrix exactly."""
        if k_dim % self.k or n_dim % self.n:
            raise QuantizationError(
                f"{self.label} does not tile a [{k_dim}, {n_dim}] matrix"
            )

    def grid_shape(self, k_dim: int, n_dim: int) -> tuple[int, int]:
        """Number of groups along each dimension for a ``[k, n]`` matrix."""
        self.validate_for(k_dim, n_dim)
        return k_dim // self.k, n_dim // self.n

    def iter_groups(self, k_dim: int, n_dim: int) -> Iterator[tuple[slice, slice]]:
        """Yield ``(k_slice, n_slice)`` index pairs, row-major over groups."""
        gk, gn = self.grid_shape(k_dim, n_dim)
        for i in range(gk):
            for j in range(gn):
                yield (
                    slice(i * self.k, (i + 1) * self.k),
                    slice(j * self.n, (j + 1) * self.n),
                )

    def scale_fetches_per_packed_word(self, pack_n: int) -> int:
        """Scales the general core must fetch per ``n``-packed word.

        A packed word spans ``pack_n`` consecutive outputs at one
        ``k``.  With ``k``-only groups every output has its own scale
        (``pack_n`` fetches); spanning the group across ``n >= pack_n``
        outputs collapses this to one fetch — the efficiency the
        paper's ``g[32, 4]`` modification targets.
        """
        if pack_n < 1:
            raise QuantizationError("pack_n must be >= 1")
        if self.n >= pack_n:
            return 1
        if pack_n % self.n:
            raise QuantizationError(
                f"packed word of {pack_n} outputs straddles {self.label} groups"
            )
        return pack_n // self.n


#: Group geometries evaluated in Table II of the paper.
G128 = GroupSpec(128, 1)
G32_4 = GroupSpec(32, 4)
G256 = GroupSpec(256, 1)
G64_4 = GroupSpec(64, 4)
TABLE2_SPECS = (G128, G32_4, G256, G64_4)


def spec_from_label(label: str) -> GroupSpec:
    """Parse a paper-style label (``g128`` / ``g[32,4]``) to a spec."""
    text = label.strip().lower()
    if not text.startswith("g"):
        raise QuantizationError(f"not a group label: {label!r}")
    body = text[1:]
    if body.startswith("[") and body.endswith("]"):
        parts = body[1:-1].split(",")
        if len(parts) != 2:
            raise QuantizationError(f"malformed group label: {label!r}")
        return GroupSpec(int(parts[0]), int(parts[1]))
    return GroupSpec(int(body), 1)
