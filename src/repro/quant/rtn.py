"""Round-to-nearest (RTN) weight-only post-training quantization.

The paper adapts "the standard round-to-nearest (RTN) based PTQ
algorithm" (Section V, Table II) with group geometries from
:mod:`repro.quant.groups`.  This module implements that algorithm for
INT4/INT2 weights over ``[k, n]`` matrices:

* **asymmetric** (the deployment default for weight-only LLM PTQ):
  per-group ``scale = (max - min) / (2**bits - 1)`` and an integer
  zero point, so codes cover ``[0, 2**bits - 1]``;
* **symmetric**: per-group ``scale = max(|w|) / (2**(bits-1) - 1)``
  with signed codes.

PacQ's multiplier consumes *signed* weights re-biased by +8 (INT4) or
+2 (INT2); :meth:`QuantizedMatrix.signed_codes` provides exactly that
view regardless of the storage convention.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import QuantizationError
from repro.quant.groups import GroupSpec

#: Weight bit-widths the paper evaluates.
SUPPORTED_BITS = (2, 3, 4, 8)


def _check_bits(bits: int) -> None:
    if bits not in SUPPORTED_BITS:
        raise QuantizationError(f"unsupported weight precision: INT{bits}")


@dataclass(frozen=True)
class QuantizedMatrix:
    """A group-quantized ``[k, n]`` weight matrix.

    Attributes:
        codes: integer codes, dtype int16, shape ``[k, n]``.  For the
            asymmetric scheme codes lie in ``[0, 2**bits - 1]``; for
            the symmetric scheme in ``[-2**(bits-1), 2**(bits-1) - 1]``.
        scales: per-group scales, shape ``grid_shape``.
        zeros: per-group zero points (same shape); all-zero when
            symmetric.
        bits: weight precision.
        group: group geometry.
        symmetric: quantization scheme flag.
    """

    codes: np.ndarray
    scales: np.ndarray
    zeros: np.ndarray
    bits: int
    group: GroupSpec
    symmetric: bool = False

    @property
    def k_dim(self) -> int:
        return int(self.codes.shape[0])

    @property
    def n_dim(self) -> int:
        return int(self.codes.shape[1])

    @property
    def qmin(self) -> int:
        return -(1 << (self.bits - 1)) if self.symmetric else 0

    @property
    def qmax(self) -> int:
        if self.symmetric:
            return (1 << (self.bits - 1)) - 1
        return (1 << self.bits) - 1

    def signed_codes(self) -> np.ndarray:
        """Codes shifted into the signed range ``[-2**(b-1), 2**(b-1)-1]``.

        This is the representation PacQ packs: the multiplier re-biases
        each signed weight ``B`` by ``2**(bits-1)`` (8 for INT4), which
        for asymmetric storage is simply ``code - offset`` round-trips.
        """
        if self.symmetric:
            return self.codes.copy()
        return self.codes - (1 << (self.bits - 1))

    def expand_scales(self) -> np.ndarray:
        """Per-element scales, shape ``[k, n]`` (broadcast from groups)."""
        return np.repeat(
            np.repeat(self.scales, self.group.k, axis=0), self.group.n, axis=1
        )

    def expand_zeros(self) -> np.ndarray:
        """Per-element zero points, shape ``[k, n]``."""
        return np.repeat(
            np.repeat(self.zeros, self.group.k, axis=0), self.group.n, axis=1
        )

    def dequantize(self) -> np.ndarray:
        """Reconstruct the float weight matrix (float64)."""
        return (self.codes - self.expand_zeros()) * self.expand_scales()

    def storage_bits(self, scale_bits: int = 16) -> int:
        """Total storage footprint of codes + metadata, in bits."""
        n_groups = int(self.scales.size)
        meta = n_groups * scale_bits
        if not self.symmetric:
            meta += n_groups * self.bits
        return self.codes.size * self.bits + meta


def quantize_rtn(
    weights: np.ndarray,
    bits: int,
    group: GroupSpec,
    symmetric: bool = False,
) -> QuantizedMatrix:
    """Group-wise RTN quantization of a ``[k, n]`` weight matrix."""
    _check_bits(bits)
    if weights.ndim != 2:
        raise QuantizationError(f"expected a [k, n] matrix, got shape {weights.shape}")
    k_dim, n_dim = weights.shape
    grid = group.grid_shape(k_dim, n_dim)

    # Reshape into [gk, group.k, gn, group.n] so per-group reductions
    # are vectorized rather than looped.
    blocked = weights.reshape(grid[0], group.k, grid[1], group.n)
    # Floor scales at the smallest normal float so degenerate groups
    # (all-subnormal weights) cannot underflow to a zero divisor.
    tiny = np.finfo(np.float64).tiny
    if symmetric:
        qmax = (1 << (bits - 1)) - 1
        qmin = -(1 << (bits - 1))
        absmax = np.abs(blocked).max(axis=(1, 3))
        scales = np.where(absmax > 0, np.maximum(absmax / qmax, tiny), 1.0)
        zeros = np.zeros_like(scales)
    else:
        qmax = (1 << bits) - 1
        qmin = 0
        hi = blocked.max(axis=(1, 3))
        lo = blocked.min(axis=(1, 3))
        # Standard asymmetric RTN: range anchored to include zero so a
        # zero weight quantizes exactly.
        hi = np.maximum(hi, 0.0)
        lo = np.minimum(lo, 0.0)
        span = hi - lo
        scales = np.where(span > 0, np.maximum(span / qmax, tiny), 1.0)
        zeros = np.clip(np.round(-lo / scales), qmin, qmax)

    scale_grid = scales[:, None, :, None]
    zero_grid = zeros[:, None, :, None]
    codes = np.clip(np.round(blocked / scale_grid + zero_grid), qmin, qmax)
    codes = codes.reshape(k_dim, n_dim).astype(np.int16)
    return QuantizedMatrix(
        codes=codes,
        scales=scales.astype(np.float64),
        zeros=zeros.astype(np.float64),
        bits=bits,
        group=group,
        symmetric=symmetric,
    )


def dequantize(qm: QuantizedMatrix) -> np.ndarray:
    """Module-level alias of :meth:`QuantizedMatrix.dequantize`."""
    return qm.dequantize()


@dataclass
class RtnQuantizer:
    """Configurable RTN quantizer, convenient for sweeps.

    Example:
        >>> q = RtnQuantizer(bits=4, group=GroupSpec(128))
        >>> qm = q(np.random.default_rng(0).normal(size=(256, 64)))
        >>> qm.bits
        4
    """

    bits: int = 4
    group: GroupSpec = field(default_factory=lambda: GroupSpec(128, 1))
    symmetric: bool = False

    def __call__(self, weights: np.ndarray) -> QuantizedMatrix:
        return quantize_rtn(weights, self.bits, self.group, self.symmetric)
