"""PTQ algorithms beyond plain RTN (paper Section II related work).

The paper evaluates RTN because PacQ is algorithm-agnostic ("PacQ does
not require any quantization algorithm modifications"), but the
frameworks it targets (AutoGPTQ, llmc) ship stronger PTQ methods.
This module implements two of them over the same
:class:`~repro.quant.rtn.QuantizedMatrix` representation, so any of
them can feed the packing flow and :func:`repro.core.gemm.hyper_gemm`:

* **AWQ-style activation-aware scaling** (Lin et al., MLSys'24 — the
  paper's [10]): per-input-channel equalization scales chosen by grid
  search to minimize the weighted reconstruction error
  ``|| diag(s)^-1 W_q(diag(s) W) - W ||`` under an activation-magnitude
  importance profile.  The scales fold into the preceding layer, so
  inference cost is unchanged.
* **GPTQ-style error compensation** (Frantar et al. — the paper's
  [2]): columns are quantized one at a time in ``n`` order and the
  rounding error of each column is propagated into the not-yet-
  quantized remainder through the (diagonal-approximated) Hessian,
  i.e. OBQ with a cheap update.

Both return a :class:`QuantizedMatrix` plus metadata, and both must
only *reduce* weighted reconstruction error relative to RTN — a
property the tests enforce.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import QuantizationError
from repro.quant.groups import GroupSpec
from repro.quant.rtn import QuantizedMatrix, quantize_rtn


@dataclass(frozen=True)
class AwqResult:
    """Outcome of AWQ-style scale search."""

    quantized: QuantizedMatrix
    channel_scales: np.ndarray  #: [k] equalization scales (fold upstream)
    grid_alpha: float  #: chosen exponent of the importance profile


def _weighted_mse(
    weights: np.ndarray, recon: np.ndarray, importance: np.ndarray
) -> float:
    diff = (weights - recon) * importance[:, None]
    return float(np.mean(diff * diff))


def awq_quantize(
    weights: np.ndarray,
    activation_scale: np.ndarray,
    bits: int = 4,
    group: GroupSpec | None = None,
    grid: int = 20,
    symmetric: bool = False,
) -> AwqResult:
    """Activation-aware weight quantization via per-channel scaling.

    Args:
        weights: ``[k, n]`` weight matrix.
        activation_scale: ``[k]`` per-input-channel activation
            magnitudes (e.g. mean absolute activation from calibration).
        bits / group / symmetric: passed through to RTN.
        grid: number of ``alpha`` candidates in ``[0, 1]``.

    The candidate scales are ``s = activation_scale**alpha`` (the AWQ
    search space); the best ``alpha`` minimizes activation-weighted
    reconstruction error.  ``alpha = 0`` degenerates to plain RTN, so
    the result can never be worse than RTN under the same metric.
    """
    if weights.ndim != 2:
        raise QuantizationError(f"expected [k, n] weights, got {weights.shape}")
    if activation_scale.shape != (weights.shape[0],):
        raise QuantizationError("activation_scale must have one entry per k channel")
    if np.any(activation_scale <= 0):
        raise QuantizationError("activation scales must be positive")
    spec = group if group is not None else GroupSpec(min(128, weights.shape[0]), 1)

    importance = activation_scale / activation_scale.mean()
    best: tuple[float, float, np.ndarray, QuantizedMatrix] | None = None
    for alpha in np.linspace(0.0, 1.0, grid):
        scales = importance**alpha
        scaled = weights * scales[:, None]
        qm = quantize_rtn(scaled, bits=bits, group=spec, symmetric=symmetric)
        recon = qm.dequantize() / scales[:, None]
        err = _weighted_mse(weights, recon, importance)
        if best is None or err < best[0]:
            best = (err, float(alpha), scales, qm)
    assert best is not None
    _, alpha, scales, qm = best
    return AwqResult(quantized=qm, channel_scales=scales, grid_alpha=alpha)


def awq_dequantize(result: AwqResult) -> np.ndarray:
    """Reconstruct the effective weights an AWQ deployment computes."""
    return result.quantized.dequantize() / result.channel_scales[:, None]


def gptq_quantize(
    weights: np.ndarray,
    hessian_diag: np.ndarray | None = None,
    bits: int = 4,
    group: GroupSpec | None = None,
    symmetric: bool = False,
) -> QuantizedMatrix:
    """GPTQ-style quantization with row-wise error compensation.

    Walks the ``k`` (input) dimension in order of decreasing Hessian
    diagonal; after quantizing row ``k`` of the weight matrix, the
    rounding error is distributed into the remaining rows proportional
    to their correlation under the diagonal Hessian approximation —
    i.e. the cheap OBQ update ``W[j] -= err * (H[k,j] / H[k,k])``
    restricted to the diagonal (the correction simplifies to carrying
    the error into the *next* row in scan order).

    Scales/zeros are taken from an initial RTN pass so the metadata
    layout (and therefore packing and PacQ execution) is unchanged —
    only the codes move.
    """
    if weights.ndim != 2:
        raise QuantizationError(f"expected [k, n] weights, got {weights.shape}")
    k_dim, n_dim = weights.shape
    spec = group if group is not None else GroupSpec(min(128, k_dim), 1)
    base = quantize_rtn(weights, bits=bits, group=spec, symmetric=symmetric)

    diag = (
        np.ones(k_dim)
        if hessian_diag is None
        else np.asarray(hessian_diag, dtype=np.float64)
    )
    if diag.shape != (k_dim,):
        raise QuantizationError("hessian_diag must have one entry per k channel")
    if np.any(diag <= 0):
        raise QuantizationError("hessian diagonal must be positive")

    order = np.argsort(-diag)  # most-sensitive rows first
    scales = base.expand_scales()
    zeros = base.expand_zeros()
    qmin, qmax = base.qmin, base.qmax

    residual = weights.astype(np.float64).copy()
    codes = np.empty_like(base.codes)
    for idx, k in enumerate(order):
        code_row = np.clip(
            np.round(residual[k] / scales[k] + zeros[k]), qmin, qmax
        )
        codes[k] = code_row.astype(np.int16)
        recon = (code_row - zeros[k]) * scales[k]
        err = residual[k] - recon
        if idx + 1 < k_dim:
            nxt = order[idx + 1]
            # Diagonal-Hessian OBQ update: push the error into the next
            # unquantized row, weighted by relative sensitivity.
            residual[nxt] += err * min(1.0, diag[k] / diag[nxt])
    return QuantizedMatrix(
        codes=codes,
        scales=base.scales,
        zeros=base.zeros,
        bits=bits,
        group=spec,
        symmetric=symmetric,
    )
