#!/usr/bin/env bash
# Regenerate the committed co-design artifacts (docs/data/codesign.csv
# and the generated section of docs/codesign.md) from scratch:
# capture three canonical scheduling policies with serve-sim, then
# replay the captures across the num_sms sweep.  Deterministic: seeded
# greedy trace, counts-only captures, analytical replay.
#
# Usage:  scripts/regen_codesign.sh [--check]
#   --check  also fail (exit 1) when the committed artifacts were
#            stale — what CI runs.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src

CHECK=()
if [[ "${1:-}" == "--check" ]]; then
    CHECK=(--check)
fi

CAPDIR="${CODESIGN_CAPTURE_DIR:-docs/data/captures}"
mkdir -p "$CAPDIR"

# One shared trace (greedy, seeded, shared-prefix traffic) so the
# three captures differ only by scheduling policy.
# Prompts deliberately span several 16-row warp tiles so policy
# effects survive the simulator's tile padding: a fifo prefill of a
# 33-48-token prompt fills 3 tiles, while the same request behind the
# prefix cache prefills only its post-preamble suffix (1 tile).
TRACE=(--requests 12 --max-batch 4 --vocab 64 --d-model 64 --d-ffn 128
       --max-seq 128 --prompt-len 8,48 --max-new 4,12 --shared-prefix 32
       --shared-fraction 0.75 --seed 0 --backend fast)

python -m repro serve-sim "${TRACE[@]}" \
    --codesign fifo --json "$CAPDIR/fifo.json"

python -m repro serve-sim "${TRACE[@]}" \
    --prefix-cache-mb 16 --prefill-chunk 16 \
    --codesign prefix-cache --json "$CAPDIR/prefix-cache.json"

python -m repro serve-sim "${TRACE[@]}" \
    --draft bigram --spec-k 4 \
    --codesign speculative --json "$CAPDIR/speculative.json"

python -m repro codesign \
    "$CAPDIR/fifo.json" "$CAPDIR/prefix-cache.json" "$CAPDIR/speculative.json" \
    --grid num_sms=1,2 \
    --csv docs/data/codesign.csv --out docs/codesign.md "${CHECK[@]}"
