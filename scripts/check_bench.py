#!/usr/bin/env python
"""CI benchmark regression gate: fresh records vs committed baselines.

Compares freshly measured ``--quick`` ``BENCH_*.json`` records against
the baselines committed at the repo root and exits non-zero when a
gated metric regresses.  Only *relative* metrics are gated — speedup
ratios, which divide out machine speed — and the floor is itself
relative (default: the fresh ratio must reach >= 50% of the committed
value) so shared-runner noise does not flake the gate while a real
regression (a backend silently falling off its fast path, a serving
batch decomposing into per-sequence GEMMs) still trips it.  Absolute
wall-clock numbers are recorded in the JSON but never gated.

Usage (what CI runs after the perf-smoke steps)::

    python scripts/check_bench.py fresh-bench/BENCH_engine.json \
        fresh-bench/BENCH_serve.json [--baseline-dir .] [--floor 0.5]

Each fresh file is matched to the committed baseline of the same name;
a missing baseline or an unknown schema is an error (commit the
baseline / register the schema below), so new benchmarks cannot
silently escape the gate.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

#: Gated metrics per record schema: dotted paths to speedup ratios.
GATED_METRICS: dict[str, list[str]] = {
    "bench_engine/v1": [
        "headlines.bitexact_vec_vs_scalar",
        "headlines.plan_reuse_batched_vs_per_call_fast",
    ],
    "bench_session/v1": ["speedup"],
    "bench_serve/v1": ["speedup"],
    "bench_serve/v2": ["speedup", "shared_prefix.speedup"],
    "bench_serve/v3": [
        "speedup",
        "shared_prefix.speedup",
        "speculative.speedup",
    ],
    # data_parallel.speedup is machine-shaped (it scales with usable
    # cores, see bench_serve.fleet_floor); the relative 50% floor
    # against the committed baseline still catches real regressions
    # while absorbing the baseline-box vs CI-box core-count gap.
    "bench_serve/v4": [
        "speedup",
        "shared_prefix.speedup",
        "speculative.speedup",
        "data_parallel.speedup",
    ],
}

DEFAULT_FLOOR = 0.5


def lookup(record: dict, path: str):
    """Resolve a dotted path into a nested dict; None when absent."""
    node = record
    for key in path.split("."):
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node


def check_pair(
    fresh_path: pathlib.Path, baseline_path: pathlib.Path, floor: float
) -> tuple[list[list[str]], list[str]]:
    """Gate one fresh record; returns (report rows, failure messages)."""
    name = fresh_path.name
    if not baseline_path.exists():
        return [], [f"{name}: no committed baseline at {baseline_path}"]
    fresh = json.loads(fresh_path.read_text())
    baseline = json.loads(baseline_path.read_text())
    schema = fresh.get("schema")
    if schema != baseline.get("schema"):
        return [], [
            f"{name}: schema {schema!r} != baseline "
            f"{baseline.get('schema')!r} — regenerate the baseline"
        ]
    metrics = GATED_METRICS.get(schema)
    if metrics is None:
        return [], [
            f"{name}: unknown schema {schema!r} — register its gated "
            "metrics in scripts/check_bench.py"
        ]
    rows: list[list[str]] = []
    failures: list[str] = []
    for metric in metrics:
        base_value = lookup(baseline, metric)
        fresh_value = lookup(fresh, metric)
        if not isinstance(base_value, (int, float)) or not isinstance(
            fresh_value, (int, float)
        ):
            failures.append(
                f"{name}: metric {metric} missing "
                f"(baseline={base_value!r}, fresh={fresh_value!r})"
            )
            continue
        required = floor * base_value
        ok = fresh_value >= required
        rows.append(
            [
                name,
                metric,
                f"{base_value:.2f}",
                f"{required:.2f}",
                f"{fresh_value:.2f}",
                "ok" if ok else "REGRESSION",
            ]
        )
        if not ok:
            failures.append(
                f"{name}: {metric} = {fresh_value:.2f} fell below "
                f"{required:.2f} ({floor:.0%} of committed {base_value:.2f})"
            )
    return rows, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "fresh",
        nargs="+",
        metavar="BENCH.json",
        help="freshly measured record(s) to gate",
    )
    parser.add_argument(
        "--baseline-dir",
        default=".",
        metavar="DIR",
        help="directory holding the committed baselines (default: repo root)",
    )
    parser.add_argument(
        "--floor",
        type=float,
        default=DEFAULT_FLOOR,
        metavar="FRAC",
        help=f"fresh/committed ratio floor (default: {DEFAULT_FLOOR})",
    )
    args = parser.parse_args(argv)

    if not 0 < args.floor <= 1:
        parser.error(f"--floor must lie in (0, 1], got {args.floor}")
    baseline_dir = pathlib.Path(args.baseline_dir)
    all_rows: list[list[str]] = []
    all_failures: list[str] = []
    for fresh_name in args.fresh:
        fresh_path = pathlib.Path(fresh_name)
        rows, failures = check_pair(
            fresh_path, baseline_dir / fresh_path.name, args.floor
        )
        all_rows.extend(rows)
        all_failures.extend(failures)

    if all_rows:
        widths = [max(len(row[col]) for row in all_rows) for col in range(6)]
        header = ["record", "metric", "committed", "floor", "fresh", "status"]
        widths = [max(w, len(h)) for w, h in zip(widths, header, strict=False)]
        for row in [header] + all_rows:
            print("  ".join(cell.ljust(w) for cell, w in zip(row, widths, strict=False)))
    for message in all_failures:
        print(f"REGRESSION GATE: {message}", file=sys.stderr)
    if all_failures:
        return 1
    print(
        f"\nbenchmark gate: {len(all_rows)} metric(s) within "
        f"{args.floor:.0%} floors"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
