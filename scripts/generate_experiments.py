#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md (compatibility shim).

The generation logic moved into the harness report pipeline
(``python -m repro report``, sink layer in :mod:`repro.core.report`);
this script remains so the historical invocation keeps working::

    python scripts/generate_experiments.py
"""

from __future__ import annotations

import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(["report", "--out", str(ROOT / "EXPERIMENTS.md")]))
