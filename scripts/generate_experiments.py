#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md from the experiment runners.

Runs every reproduced table/figure and writes the paper-vs-measured
record.  Invoke from the repository root::

    python scripts/generate_experiments.py
"""

from __future__ import annotations

import io
import pathlib

from repro.core.experiments import ALL_EXPERIMENTS, table1
from repro.core.extensions import EXTENSION_EXPERIMENTS

HEADER = """\
# EXPERIMENTS — paper vs measured

Regenerate this file with ``python scripts/generate_experiments.py``;
run any single experiment with ``python -m repro <name>`` and its
benchmark with ``pytest benchmarks/bench_<name>.py --benchmark-only``.

Absolute numbers are not expected to match the paper (our substrate is
an analytical simulator, not the authors' RTL + CACTI testbed); the
*shape* — who wins, by what factor, where the knees fall — is the
reproduction target.  Deviations are discussed per experiment below.

## Summary

| Experiment | Paper's headline | Measured here | Shape holds? |
|---|---|---|---|
| Fig. 7(a) | RF traffic -36.8 % (INT4) / -54.3 % (INT2) vs `P(Bx)k` | {fig7a_4:.1%} / {fig7a_2:.1%} | yes — PacQ always lower, INT2 gap > INT4 gap |
| Fig. 7(b) | speedup 1.98x / 1.99x | {fig7b_4:.2f}x / {fig7b_2:.2f}x | yes — ~2x from the dup-2 adder trees |
| Table II | iso-perplexity g128 vs g[32,4] (5.73 vs 5.72) | {t2_g128:.2f} vs {t2_g324:.2f} (fp16 {t2_fp16:.2f}) | yes — <4 % gap, quantized > fp16 |
| Fig. 8 | MUL throughput/watt 3.38x / 6.75x | {fig8_4:.2f}x / {fig8_2:.2f}x | yes — parallel wins ~3x / ~5x, INT2 > INT4 |
| Fig. 9 | reuse 74.5 % / 72.7 % / 60.2 %, avg ~69 % | {fig9_a:.1%} / {fig9_b:.1%} / {fig9_c:.1%}, avg {fig9_avg:.1%} | yes — within 5 pts everywhere |
| Fig. 10 | EDP -70.4 % (INT4) / -81.4 % (INT2) | {fig10_4:.1%} / {fig10_2:.1%} | yes — INT4 within 1 pt; INT2 direction + ordering hold |
| Fig. 11 | dup-2 is the knee (1.33x gain; dup-4 only +1.11x) | {fig11_12:.2f}x then {fig11_24:.2f}x | yes — largest gain at dup 2, diminishing at 4, INT4 declines at 8 |
| Fig. 12(a) | gains orthogonal to DP size | {fig12a_8:.2f}x (DP-8) vs {fig12a_16:.2f}x (DP-16) | yes — near-identical gains across widths |
| Fig. 12(b) | 4.12x / 3.75x vs Mix-GEMM | {fig12b_4:.2f}x / {fig12b_2:.2f}x | yes — within 10 % |

## Method notes

* **Fig. 7(a)**: RF beats measured by the trace-driven octet simulator
  (LRU operand buffers per Fig. 3(d)).  Our INT4 reduction overshoots
  the paper because PacQ's output-stationary flow eliminates *all*
  partial-sum RF round-trips in our model, while the paper's flow
  appears to retain some; the INT2 point lands within 1 pt.
* **Fig. 7(b)**: the ~2x is emergent — `P(Bx)k` cannot use the
  parallel multiplier (its packed weights need different activations),
  and PacQ is adder-tree-bound at dup 2.  Pipeline-fill overhead gives
  1.96x vs the paper's 1.98/1.99x.
* **Table II**: synthetic self-calibrated bigram LM (no LLM checkpoint
  offline; see DESIGN.md).  Absolute perplexities differ by
  construction; the claim under test — reshaping the 128-element group
  to [32, 4] is perplexity-neutral — reproduces.
* **Fig. 8**: unit energies from the Table I inventories + 32 nm
  component constants.  INT2 undershoots (5.3x vs 6.75x) because our
  model charges the eight per-lane rounding units and output registers
  linearly; the paper's synthesis evidently amortizes them better.
* **Fig. 10**: EDP over on-chip energy (RF + L1 + L2 + units +
  general core), matching the paper's CACTI-based on-chip methodology;
  DRAM is tracked but excluded.  INT2 undershoots (-{fig10_2:.1%}
  vs -81.4 %) mainly because our INT2 compute-energy premium (extra
  rounding lanes) is charged every cycle.
* **Fig. 12(b)**: Mix-GEMM modelled as binary segmentation whose cost
  is dominated by the two activation segments FP16 requires — INT4 and
  INT2 cost the same, reproducing the paper's near-equal bars.

## Full results

"""


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def main() -> None:
    results = {name: fn() for name, fn in sorted(ALL_EXPERIMENTS.items())}

    def row(exp: str, label: str) -> float:
        return results[exp].row(label).measured

    summary = HEADER.format(
        fig7a_4=row("fig7a", "INT4 RF reduction vs P(B4)k"),
        fig7a_2=row("fig7a", "INT2 RF reduction vs P(B8)k"),
        fig7b_4=row("fig7b", "INT4 speedup vs P(B4)k"),
        fig7b_2=row("fig7b", "INT2 speedup vs P(B8)k"),
        t2_fp16=row("table2", "fp16"),
        t2_g128=row("table2", "g128"),
        t2_g324=row("table2", "g[32,4]"),
        fig8_4=row("fig8", "FP-MUL INT4"),
        fig8_2=row("fig8", "FP-MUL INT2"),
        fig9_a=results["fig9"].rows[0].measured,
        fig9_b=results["fig9"].rows[1].measured,
        fig9_c=results["fig9"].rows[2].measured,
        fig9_avg=results["fig9"].rows[3].measured,
        fig10_4=row("fig10", "INT4 PacQ EDP reduction"),
        fig10_2=row("fig10", "INT2 PacQ EDP reduction"),
        fig11_12=row("fig11", "INT4 gain dup1->dup2"),
        fig11_24=row("fig11", "INT4 gain dup2->dup4"),
        fig12a_8=row("fig12a", "DP-8 INT4 (T/W vs DP-8 baseline)"),
        fig12a_16=row("fig12a", "DP-16 INT4 (T/W vs DP-16 baseline)"),
        fig12b_4=row("fig12b", "INT4 PacQ vs Mix-GEMM"),
        fig12b_2=row("fig12b", "INT2 PacQ vs Mix-GEMM"),
    )

    out = io.StringIO()
    out.write(summary)

    out.write("### Table I — configuration (identity with the paper)\n\n")
    out.write("| unit | composition |\n|---|---|\n")
    for unit, composition in table1():
        out.write(f"| {unit} | {composition} |\n")
    out.write("\n")

    for name, result in results.items():
        out.write(f"### {name} — {result.description}\n\n")
        out.write("| configuration | measured | paper | unit |\n|---|---|---|---|\n")
        for r in result.rows:
            paper = "-" if r.paper is None else _fmt(r.paper)
            out.write(f"| {r.label} | {_fmt(r.measured)} | {paper} | {r.unit} |\n")
        out.write("\n")

    out.write("## Extension experiments (beyond the paper's figures)\n\n")
    for name, fn in sorted(EXTENSION_EXPERIMENTS.items()):
        result = fn()
        out.write(f"### {name} — {result.description}\n\n")
        out.write("| configuration | measured | unit |\n|---|---|---|\n")
        for r in result.rows:
            out.write(f"| {r.label} | {_fmt(r.measured)} | {r.unit} |\n")
        out.write("\n")

    path = pathlib.Path(__file__).resolve().parent.parent / "EXPERIMENTS.md"
    path.write_text(out.getvalue())
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
